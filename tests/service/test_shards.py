"""Multi-process shards: bit-identity, metrics completeness, respawn.

The shard pool moves recovery across a process boundary; nothing
observable may change when it does.  Three contracts are pinned here:

- **Bit-identity** — every per-word payload a sharded service answers
  equals what a fresh serial engine produces, across mixed contexts,
  batch splits (``max_batch=3``), the served-answer cache, and a
  worker killed mid-run (the respawned shard rebuilds the identical
  deterministic engine).
- **Metrics completeness** — the parent registry's ``service.*``
  engine counters equal the *sum* of the per-shard cumulative
  snapshots: the diff-shipping protocol neither drops nor
  double-counts.
- **Failure policy** — a killed worker costs one respawn and zero
  lost or duplicated words.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import SwdEcc, TieBreak
from repro.ecc import canonical_secded_39_32
from repro.errors import ReproError, ServiceError
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.program.stats import FrequencyTable
from repro.program.synth import synthesize_benchmark
from repro.service import RecoveryService, ServiceCatalog
from repro.service.api import RecoveryRequest, error_payload, result_payload
from repro.service.catalog import (
    _CONTEXT_IMAGE_LENGTH,
    _CONTEXT_SEED,
    DEFAULT_CODE_ID,
)
from repro.service.shards import BatchEngine, ShardPool, ShardSpec, route_key

CONTEXT_IDS = ("none", "mcf", "bzip2")
CODE_N = canonical_secded_39_32().n


@pytest.fixture(scope="module")
def sharded_service():
    """A 2-shard service; tiny batches force batch-boundary splits."""
    service = RecoveryService(
        port=0,
        workers=2,
        max_batch=3,
        linger_s=0.001,
        registry=MetricsRegistry(),
        event_log=EventLog(),
    )
    with service:
        yield service


@pytest.fixture(scope="module")
def reference():
    """A fresh serial engine + contexts, configured like the catalog."""
    code = canonical_secded_39_32()
    engine = SwdEcc(
        code, tie_break=TieBreak.FIRST, rng=random.Random(0), cache=True
    )
    contexts = {"none": RecoveryContext()}
    for name in ("mcf", "bzip2"):
        image = synthesize_benchmark(
            name, length=_CONTEXT_IMAGE_LENGTH, seed=_CONTEXT_SEED
        )
        contexts[name] = RecoveryContext.for_instructions(
            FrequencyTable.from_image(image)
        )
    return code, engine, contexts


def _requests_strategy():
    word = st.tuples(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.lists(
            st.integers(min_value=0, max_value=CODE_N - 1),
            min_size=0, max_size=2, unique=True,
        ),
    )
    request = st.tuples(
        st.lists(word, min_size=1, max_size=5),
        st.sampled_from(CONTEXT_IDS),
    )
    return st.lists(request, min_size=1, max_size=6)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(spec=_requests_strategy())
def test_sharded_identical_to_serial(spec, sharded_service, reference):
    """Process-boundary batching is invisible in the answers."""
    code, serial_engine, contexts = reference

    requests = []
    for word_specs, context_id in spec:
        words = []
        for message, flips in word_specs:
            received = code.encode(message)
            for bit in flips:
                received ^= 1 << bit
            words.append(received)
        requests.append(
            RecoveryRequest(words=tuple(words), context_id=context_id)
        )

    futures = [
        sharded_service.batcher.submit(request) for request in requests
    ]
    service_payloads = [
        [
            json.loads(fragment)
            for fragment in future.result(timeout=60.0)["fragments"]
        ]
        for future in futures
    ]

    for request, payloads in zip(requests, service_payloads):
        context = contexts[request.context_id]
        assert len(payloads) == len(request.words)
        for word, payload in zip(request.words, payloads):
            try:
                result = serial_engine.recover(word, context)
            except ReproError as error:
                expected = error_payload(word, error)
            else:
                expected = result_payload(word, result)
            assert payload == expected


def test_identity_survives_worker_kill(sharded_service):
    """A killed worker costs a respawn, never a changed answer."""
    code = sharded_service.catalog.code(DEFAULT_CODE_ID)
    dues = tuple(code.encode(0x1234_5678 + i) ^ 0b11 for i in range(5))
    request = RecoveryRequest(words=dues, context_id="mcf")

    before = sharded_service.batcher.submit(request).result(timeout=60.0)
    pool = sharded_service.shard_pool
    index = pool.route(DEFAULT_CODE_ID, "mcf")
    victim = pool.worker_pids()[index]
    respawns_before = sharded_service.registry.counter(
        "service.shard.respawns"
    ).value
    os.kill(victim, signal.SIGKILL)
    time.sleep(0.1)

    after = sharded_service.batcher.submit(request).result(timeout=60.0)
    assert after["fragments"] == before["fragments"]
    assert len(after["fragments"]) == len(dues)  # none lost, none doubled
    assert pool.worker_pids()[index] not in (None, victim)
    assert pool.states()[index] == "ok"
    assert (
        sharded_service.registry.counter("service.shard.respawns").value
        > respawns_before
    )


def test_healthz_names_lost_worker(sharded_service):
    """/healthz degrades to 503 naming the dead shard, then recovers."""
    pool = sharded_service.shard_pool
    victim_index = 0
    os.kill(pool.worker_pids()[victim_index], signal.SIGKILL)
    deadline = time.monotonic() + 5.0
    status = 200
    while time.monotonic() < deadline:
        status, _, body = sharded_service.healthz_endpoint()
        if status != 200:
            break
        time.sleep(0.05)
    assert status == 503
    parsed = json.loads(body)
    assert parsed["status"] == "degraded"
    assert str(victim_index) in parsed["unhealthy_shards"]

    # Traffic to the dead shard triggers the respawn; health returns.
    code_id, context_id = DEFAULT_CODE_ID, None
    for candidate in CONTEXT_IDS:
        if pool.route(DEFAULT_CODE_ID, candidate) == victim_index:
            context_id = candidate
            break
    assert context_id is not None, "no context routes to shard 0"
    code = sharded_service.catalog.code(code_id)
    request = RecoveryRequest(
        words=(code.encode(0xBEEF) ^ 0b11,), context_id=context_id
    )
    sharded_service.batcher.submit(request).result(timeout=60.0)
    status, _, body = sharded_service.healthz_endpoint()
    assert status == 200
    assert json.loads(body)["status"] == "ok"


def test_parent_metrics_equal_sum_of_shard_snapshots():
    """Diff-shipped deltas reassemble the exact per-shard totals.

    For every engine-owned ``service.*`` counter, the parent registry
    (built purely from per-batch deltas) must equal the sum of the
    shards' own cumulative snapshots — the protocol neither drops nor
    double-counts, even across batches that split work unevenly.
    """
    registry = MetricsRegistry()
    event_log = EventLog()
    catalog = ServiceCatalog()
    code = catalog.code(DEFAULT_CODE_ID)
    spec = ShardSpec.from_catalog(catalog, preload=("mcf",))
    counters = (
        "service.recoveries",
        "service.recovery_errors",
        "service.result.cache_hits",
        "service.result.cache_misses",
    )
    with ShardPool(
        2, spec, registry=registry, event_log=event_log
    ) as pool:
        for round_index in range(3):
            for context_id in CONTEXT_IDS:
                words = tuple(
                    code.encode(round_index * 100 + offset) ^ 0b11
                    for offset in range(4)
                )
                # Repeat one word so cache hits occur; include a
                # non-DUE so the error counter moves too.
                words = words + (words[0], code.encode(7))
                index = pool.route(DEFAULT_CODE_ID, context_id)
                outcomes = pool.execute(
                    index,
                    [RecoveryRequest(words=words, context_id=context_id)],
                )
                assert len(outcomes[0]["fragments"]) == len(words)

        snapshots = pool.snapshots()

    parent = registry.as_dict()
    for name in counters:
        shard_total = sum(
            snapshot.get(name, {}).get("value", 0)
            for snapshot in snapshots
        )
        assert parent[name]["value"] == shard_total, name
        assert shard_total > 0, f"{name} never moved; test is vacuous"
    # Histograms reassemble too: per-batch op counts ship as bucket
    # deltas and must sum exactly.
    shard_ops = [s["service.batch_ops"] for s in snapshots]
    assert parent["service.batch_ops"]["count"] == sum(
        h["count"] for h in shard_ops
    )
    assert parent["service.batch_ops"]["sum"] == sum(
        h["sum"] for h in shard_ops
    )


def test_route_key_is_stable_and_in_range():
    for shards in (1, 2, 3, 8):
        seen = set()
        for context_id in CONTEXT_IDS:
            index = route_key(DEFAULT_CODE_ID, context_id, shards)
            assert 0 <= index < shards
            assert index == route_key(DEFAULT_CODE_ID, context_id, shards)
            seen.add(index)
        if shards == 1:
            assert seen == {0}


def test_batch_engine_cost_mode_bypasses_cache():
    """Cost attribution measures real engine work, never dict probes."""
    registry = MetricsRegistry()
    catalog = ServiceCatalog()
    code = catalog.code(DEFAULT_CODE_ID)
    engine = BatchEngine(catalog, registry=registry, report_cost=True)
    request = RecoveryRequest(
        words=(code.encode(0x1234) ^ 0b11,), context_id="none"
    )
    first = engine.execute([request])[0]
    second = engine.execute([request])[0]
    assert first["cost"] is not None and first["cost"]["joules"] > 0
    assert first["fragments"] == second["fragments"]
    assert registry.counter("service.result.cache_hits").value == 0
    assert registry.counter("service.result.cache_misses").value == 0


def test_batch_engine_cache_cap_clears_and_stays_correct():
    registry = MetricsRegistry()
    catalog = ServiceCatalog()
    code = catalog.code(DEFAULT_CODE_ID)
    engine = BatchEngine(catalog, registry=registry, result_cache_limit=4)
    words = tuple(code.encode(i) ^ 0b11 for i in range(6))
    request = RecoveryRequest(words=words, context_id="none")
    first = engine.execute([request])[0]
    second = engine.execute([request])[0]
    assert first["fragments"] == second["fragments"]


def test_shard_pool_rejects_bad_worker_counts():
    spec = ShardSpec.from_catalog(ServiceCatalog())
    with pytest.raises(ServiceError):
        ShardPool(0, spec)


class TestCatalogFreeze:
    """Late registrations must fail fast once shard workers snapshot."""

    def test_late_registration_fails_fast_across_process_boundary(self):
        catalog = ServiceCatalog()
        catalog.register_code("pre-start", canonical_secded_39_32())
        service = RecoveryService(
            port=0,
            workers=1,
            catalog=catalog,
            registry=MetricsRegistry(),
            event_log=EventLog(),
        )
        with service:
            assert catalog.frozen
            with pytest.raises(ServiceError, match="frozen"):
                catalog.register_code(
                    "too-late", canonical_secded_39_32()
                )
            with pytest.raises(ServiceError, match="workers=0"):
                catalog.register_context("too-late", RecoveryContext())
            # The pre-start registration still resolves through the
            # worker, so the snapshot semantics are intact end-to-end.
            code = canonical_secded_39_32()
            due = code.encode(0x1234) ^ 0b101
            payload = _post(
                service.url + "/recover",
                {"received": due, "code": "pre-start"},
            )
            assert payload["result"]["status"] == "recovered"
        # stop() thaws: a fresh registration is allowed again.
        assert not catalog.frozen
        catalog.register_code("post-stop", canonical_secded_39_32())

    def test_workers_zero_never_freezes(self):
        service = RecoveryService(
            port=0, registry=MetricsRegistry(), event_log=EventLog()
        )
        with service:
            assert not service.catalog.frozen
            service.catalog.register_code(
                "mid-flight", canonical_secded_39_32()
            )

    def test_freeze_error_is_descriptive(self):
        catalog = ServiceCatalog()
        catalog.freeze("2 shard worker(s) forked")
        with pytest.raises(ServiceError) as error:
            catalog.register_code("late", canonical_secded_39_32())
        message = str(error.value)
        assert "late" in message
        assert "2 shard worker(s) forked" in message
        assert "before starting the service" in message
        catalog.thaw()
        catalog.register_code("late", canonical_secded_39_32())


class TestNewCodeFamilies:
    def test_catalog_resolves_daec_dec_dected(self):
        catalog = ServiceCatalog()
        for code_id, n in (
            ("daec-41-32", 41), ("dec-44-32", 44), ("dected-45-32", 45)
        ):
            code = catalog.code(code_id)
            assert (code.n, code.k) == (n, 32), code_id
            assert code_id in catalog.code_ids()

    def test_shard_worker_rebuilds_daec_factory_code(self):
        """Factory codes need no forwarding: a worker serves daec-41-32."""
        from repro.ecc import daec_code

        service = RecoveryService(
            port=0,
            workers=1,
            registry=MetricsRegistry(),
            event_log=EventLog(),
        )
        code = daec_code()
        # A non-adjacent double: a DUE even for the DAEC decoder.
        due = code.encode(0xDEADBEEF) ^ (1 << 40) ^ (1 << 2)
        with service:
            payload = _post(
                service.url + "/recover",
                {"received": due, "code": "daec-41-32"},
            )
        assert payload["result"]["status"] == "recovered"


def _post(url: str, payload: dict, timeout: float = 15.0) -> dict:
    import urllib.request

    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.load(response)
