"""RecoveryBatcher: coalescing, backpressure, and lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ServiceError, ServiceOverloadError
from repro.obs.metrics import MetricsRegistry
from repro.service.api import RecoveryRequest
from repro.service.batcher import RecoveryBatcher


def request_of(*words: int) -> RecoveryRequest:
    return RecoveryRequest(words=tuple(words))


def echo_executor(requests):
    """One payload per word, tagging the batch it ran in."""
    return [
        [{"word": word} for word in request.words] for request in requests
    ]


class TestBatching:
    def test_single_request_round_trips(self):
        with RecoveryBatcher(echo_executor, registry=MetricsRegistry()) as b:
            future = b.submit(request_of(1, 2, 3))
            assert future.result(timeout=5.0) == [
                {"word": 1}, {"word": 2}, {"word": 3},
            ]

    def test_requests_coalesce_into_batches(self):
        batches: list[int] = []
        gate = threading.Event()

        def counting_executor(requests):
            gate.wait(10.0)
            batches.append(len(requests))
            return echo_executor(requests)

        batcher = RecoveryBatcher(
            counting_executor,
            max_batch=64,
            linger_s=0.05,
            registry=MetricsRegistry(),
        ).start()
        try:
            # The gate stalls the worker on whatever it grabs first, so
            # the rest of the submissions pile up and must coalesce.
            futures = [batcher.submit(request_of(i)) for i in range(8)]
            gate.set()
            for future in futures:
                future.result(timeout=5.0)
        finally:
            gate.set()
            batcher.stop()
        assert sum(batches) == 8
        assert len(batches) <= 2  # coalesced, not one batch per request

    def test_max_batch_closes_without_waiting_linger(self):
        sizes: list[int] = []
        gate = threading.Event()

        def gated_executor(requests):
            gate.wait(10.0)
            sizes.append(sum(len(r.words) for r in requests))
            return echo_executor(requests)

        batcher = RecoveryBatcher(
            gated_executor,
            max_batch=4,
            linger_s=10.0,  # long linger: only max_batch can close it
            registry=MetricsRegistry(),
        ).start()
        started = time.monotonic()
        try:
            # 4 words meet max_batch at once, so the gather must close
            # immediately instead of lingering 10 s for more company.
            full = batcher.submit(request_of(0, 1, 2, 3))
            # While the worker is gated on the full batch, two halves
            # queue up; together they reach max_batch and close too.
            halves = [
                batcher.submit(request_of(10, 11)),
                batcher.submit(request_of(12, 13)),
            ]
            gate.set()
            full.result(timeout=5.0)
            for future in halves:
                future.result(timeout=5.0)
        finally:
            gate.set()
            batcher.stop()
        assert time.monotonic() - started < 5.0  # never lingered
        assert sizes == [4, 4]

    def test_jobs_never_split_across_batches(self):
        seen: list[list[tuple[int, ...]]] = []

        def recording_executor(requests):
            seen.append([request.words for request in requests])
            return echo_executor(requests)

        with RecoveryBatcher(
            recording_executor,
            max_batch=2,
            linger_s=0.0,
            registry=MetricsRegistry(),
        ) as batcher:
            future = batcher.submit(request_of(*range(10)))
            future.result(timeout=5.0)
        assert [tuple(range(10))] in seen


class TestBackpressure:
    def test_overload_raises_with_retry_after(self):
        gate = threading.Event()

        def blocked_executor(requests):
            gate.wait(10.0)
            return echo_executor(requests)

        batcher = RecoveryBatcher(
            blocked_executor,
            max_batch=1,
            linger_s=0.0,
            queue_limit=4,
            registry=MetricsRegistry(),
        ).start()
        try:
            first = batcher.submit(request_of(1))  # occupies the worker
            deadline = time.monotonic() + 5.0
            while batcher.queued_words() and time.monotonic() < deadline:
                time.sleep(0.005)  # wait for the worker to claim it
            batcher.submit(request_of(2, 3, 4, 5))  # fills the queue
            with pytest.raises(ServiceOverloadError) as excinfo:
                batcher.submit(request_of(6))
            assert excinfo.value.queued == 4
            assert excinfo.value.limit == 4
            assert 0.0 < excinfo.value.retry_after <= 5.0
        finally:
            gate.set()
            batcher.stop()
        assert first.result(timeout=5.0) == [{"word": 1}]

    def test_queue_depth_gauge_tracks_backlog(self):
        registry = MetricsRegistry()
        gate = threading.Event()

        def blocked_executor(requests):
            gate.wait(10.0)
            return echo_executor(requests)

        batcher = RecoveryBatcher(
            blocked_executor,
            max_batch=1,
            linger_s=0.0,
            queue_limit=100,
            registry=registry,
        ).start()
        try:
            batcher.submit(request_of(1))
            deadline = time.monotonic() + 5.0
            while batcher.queued_words() and time.monotonic() < deadline:
                time.sleep(0.005)
            batcher.submit(request_of(2, 3))
            assert registry.get("service.queue_depth").value == 2.0
        finally:
            gate.set()
            batcher.stop()
        assert registry.get("service.queue_depth").value == 0.0

    def test_overload_counter_increments(self):
        registry = MetricsRegistry()
        gate = threading.Event()

        def blocked_executor(requests):
            gate.wait(10.0)
            return echo_executor(requests)

        batcher = RecoveryBatcher(
            blocked_executor,
            max_batch=1,
            linger_s=0.0,
            queue_limit=1,
            registry=registry,
        ).start()
        try:
            batcher.submit(request_of(1))
            deadline = time.monotonic() + 5.0
            while batcher.queued_words() and time.monotonic() < deadline:
                time.sleep(0.005)
            batcher.submit(request_of(2))
            with pytest.raises(ServiceOverloadError):
                batcher.submit(request_of(3))
        finally:
            gate.set()
            batcher.stop()
        assert registry.get("service.overloads").value == 1.0


class TestLifecycle:
    def test_submit_refused_when_not_running(self):
        batcher = RecoveryBatcher(echo_executor, registry=MetricsRegistry())
        with pytest.raises(ServiceError):
            batcher.submit(request_of(1))

    def test_stop_drains_accepted_jobs(self):
        slow = threading.Event()

        def slow_executor(requests):
            slow.wait(0.05)
            return echo_executor(requests)

        batcher = RecoveryBatcher(
            slow_executor,
            max_batch=1,
            linger_s=0.0,
            registry=MetricsRegistry(),
        ).start()
        futures = [batcher.submit(request_of(i)) for i in range(5)]
        batcher.stop()
        for index, future in enumerate(futures):
            assert future.result(timeout=1.0) == [{"word": index}]

    def test_double_start_raises(self):
        batcher = RecoveryBatcher(echo_executor, registry=MetricsRegistry())
        batcher.start()
        try:
            with pytest.raises(ServiceError):
                batcher.start()
        finally:
            batcher.stop()

    def test_stop_is_idempotent(self):
        batcher = RecoveryBatcher(echo_executor, registry=MetricsRegistry())
        batcher.start()
        batcher.stop()
        batcher.stop()

    def test_executor_exception_fails_whole_batch(self):
        def failing_executor(requests):
            raise RuntimeError("engine exploded")

        with RecoveryBatcher(
            failing_executor, registry=MetricsRegistry()
        ) as batcher:
            future = batcher.submit(request_of(1))
            with pytest.raises(RuntimeError, match="engine exploded"):
                future.result(timeout=5.0)

    def test_result_count_mismatch_fails_batch(self):
        def lying_executor(requests):
            return []  # wrong arity

        with RecoveryBatcher(
            lying_executor, registry=MetricsRegistry()
        ) as batcher:
            future = batcher.submit(request_of(1))
            with pytest.raises(ServiceError, match="result lists"):
                future.result(timeout=5.0)

    def test_cancelled_jobs_are_shed_not_executed(self):
        executed: list[tuple[int, ...]] = []
        gate = threading.Event()

        def gated_executor(requests):
            gate.wait(10.0)
            executed.extend(request.words for request in requests)
            return echo_executor(requests)

        batcher = RecoveryBatcher(
            gated_executor,
            max_batch=1,
            linger_s=0.0,
            registry=MetricsRegistry(),
        ).start()
        try:
            batcher.submit(request_of(1))
            deadline = time.monotonic() + 5.0
            while batcher.queued_words() and time.monotonic() < deadline:
                time.sleep(0.005)
            doomed = batcher.submit(request_of(99))
            assert doomed.cancel()  # timed-out client walks away
            gate.set()
            time.sleep(0.1)
        finally:
            gate.set()
            batcher.stop()
        assert (99,) not in executed


class TestValidation:
    def test_bad_knobs_raise(self):
        with pytest.raises(ServiceError):
            RecoveryBatcher(echo_executor, max_batch=0)
        with pytest.raises(ServiceError):
            RecoveryBatcher(echo_executor, linger_s=-1.0)
        with pytest.raises(ServiceError):
            RecoveryBatcher(echo_executor, queue_limit=0)

    def test_retry_after_hint_is_clamped(self):
        batcher = RecoveryBatcher(echo_executor, registry=MetricsRegistry())
        assert 0.001 <= batcher.retry_after_hint() <= 5.0
