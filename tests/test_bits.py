"""Unit and property tests for repro.bits."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import bits


class TestMasksAndSingleBits:
    def test_bit_mask_widths(self):
        assert bits.bit_mask(0) == 0
        assert bits.bit_mask(1) == 1
        assert bits.bit_mask(8) == 0xFF
        assert bits.bit_mask(39) == (1 << 39) - 1

    def test_bit_mask_rejects_negative(self):
        with pytest.raises(ValueError):
            bits.bit_mask(-1)

    def test_bit_at_is_msb_first(self):
        assert bits.bit_at(0, 8) == 0x80
        assert bits.bit_at(7, 8) == 0x01
        assert bits.bit_at(0, 39) == 1 << 38

    def test_bit_at_out_of_range(self):
        with pytest.raises(ValueError):
            bits.bit_at(8, 8)
        with pytest.raises(ValueError):
            bits.bit_at(-1, 8)

    def test_get_set_clear_flip(self):
        value = 0b1010_0000
        assert bits.get_bit(value, 0, 8) == 1
        assert bits.get_bit(value, 1, 8) == 0
        assert bits.set_bit(value, 1, 8) == 0b1110_0000
        assert bits.clear_bit(value, 0, 8) == 0b0010_0000
        assert bits.flip_bit(value, 2, 8) == 0b1000_0000

    def test_flip_bits_cancels_duplicates(self):
        assert bits.flip_bits(0, [3, 3], 8) == 0
        assert bits.flip_bits(0, [0, 1], 8) == 0b1100_0000


class TestCountsAndDistance:
    def test_popcount(self):
        assert bits.popcount(0) == 0
        assert bits.popcount(0b1011) == 3

    def test_popcount_rejects_negative(self):
        with pytest.raises(ValueError):
            bits.popcount(-1)

    def test_parity(self):
        assert bits.parity(0b111) == 1
        assert bits.parity(0b11) == 0

    def test_hamming_distance(self):
        assert bits.hamming_distance(0b1010, 0b0101) == 4
        assert bits.hamming_distance(5, 5) == 0

    @given(st.integers(0, 2**39 - 1), st.integers(0, 2**39 - 1))
    def test_hamming_distance_is_a_metric(self, a, b):
        assert bits.hamming_distance(a, b) == bits.hamming_distance(b, a)
        assert (bits.hamming_distance(a, b) == 0) == (a == b)

    @given(
        st.integers(0, 2**20 - 1),
        st.integers(0, 2**20 - 1),
        st.integers(0, 2**20 - 1),
    )
    def test_hamming_triangle_inequality(self, a, b, c):
        assert bits.hamming_distance(a, c) <= (
            bits.hamming_distance(a, b) + bits.hamming_distance(b, c)
        )


class TestBitSequences:
    def test_bits_of_msb_first(self):
        assert bits.bits_of(0b101, 4) == (0, 1, 0, 1)

    def test_support(self):
        assert bits.support(0b1001, 4) == (0, 3)
        assert bits.support(0, 4) == ()

    def test_pack_roundtrip(self):
        value = 0b110101
        assert bits.pack_bits(bits.bits_of(value, 6)) == value

    def test_pack_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits.pack_bits([0, 2, 1])

    @given(st.integers(0, 2**16 - 1))
    def test_bits_roundtrip_property(self, value):
        assert bits.bits_to_int(bits.int_to_bits(value, 16)) == value

    @given(st.integers(0, 2**16 - 1))
    def test_reverse_twice_is_identity(self, value):
        assert bits.reverse_bits(bits.reverse_bits(value, 16), 16) == value


class TestFields:
    def test_extract_opcode_like_field(self):
        word = 0xAC_85_00_04  # sw $a1, 4($a0): opcode 0x2B
        assert bits.extract_field(word, 31, 26) == 0x2B
        assert bits.extract_field(word, 15, 0) == 4

    def test_insert_then_extract(self):
        word = bits.insert_field(0, 31, 26, 0x23)
        assert bits.extract_field(word, 31, 26) == 0x23

    def test_insert_rejects_oversized_value(self):
        with pytest.raises(ValueError):
            bits.insert_field(0, 5, 0, 64)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            bits.extract_field(0, 3, 5)
        with pytest.raises(ValueError):
            bits.extract_field(0, 32, 0)

    @given(
        st.integers(0, 2**32 - 1),
        st.integers(0, 31),
        st.integers(0, 31),
        st.data(),
    )
    def test_insert_extract_roundtrip_property(self, word, a, b, data):
        low, high = min(a, b), max(a, b)
        value = data.draw(st.integers(0, (1 << (high - low + 1)) - 1))
        updated = bits.insert_field(word, high, low, value)
        assert bits.extract_field(updated, high, low) == value
        # Bits outside the field are untouched.
        mask = ((1 << (high - low + 1)) - 1) << low
        assert (updated & ~mask) == (word & ~mask)


class TestWeightVectorsAndPairs:
    def test_weight_k_count(self):
        vectors = list(bits.weight_k_vectors(39, 2))
        assert len(vectors) == 741
        assert all(bits.popcount(v) == 2 for v in vectors)

    def test_paper_enumeration_order(self):
        vectors = list(bits.weight_k_vectors(39, 2))
        # Pattern 0 is 1100...0, pattern 1 is 1010...0, last is 0...011.
        assert vectors[0] == (0b11 << 37)
        assert vectors[1] == (0b101 << 36)
        assert vectors[-1] == 0b11

    def test_weight_zero_and_overweight(self):
        assert list(bits.weight_k_vectors(4, 0)) == [0]
        assert list(bits.weight_k_vectors(4, 5)) == []

    def test_pair_index_roundtrip_exhaustive(self):
        index = 0
        for i in range(39):
            for j in range(i + 1, 39):
                assert bits.pair_index(i, j, 39) == index
                assert bits.pair_from_index(index, 39) == (i, j)
                index += 1
        assert index == 741

    def test_pair_index_rejects_bad_pairs(self):
        with pytest.raises(ValueError):
            bits.pair_index(3, 3, 39)
        with pytest.raises(ValueError):
            bits.pair_index(5, 2, 39)
        with pytest.raises(ValueError):
            bits.pair_from_index(741, 39)
