"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestFigureCommands:
    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4" in out and "741" in out

    def test_fig5_reduced(self, capsys):
        assert main(["fig5", "--instructions", "3"]) == 0
        assert "Fig. 5" in capsys.readouterr().out

    def test_fig6_reduced(self, capsys):
        assert main(["fig6", "--instructions", "2"]) == 0
        assert "Fig. 6" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "lw" in out and "povray" in out

    def test_legality(self, capsys):
        assert main(["legality"]) == 0
        out = capsys.readouterr().out
        assert "41" in out and "37" in out

    def test_properties(self, capsys):
        assert main(["properties"]) == 0
        assert "(39,32)" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_renders_table(self, capsys):
        assert main([
            "sweep", "--benchmark", "mcf", "--instructions", "2",
            "--length", "64",
        ]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "mean recovery rate" in out

    def test_sweep_json_with_jobs_matches_serial(self, capsys):
        import json

        argv = ["sweep", "--benchmark", "bzip2", "--instructions", "2",
                "--length", "64", "--json"]
        assert main(argv) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert serial["success_rates"] == parallel["success_rates"]
        assert serial["mean_success_rate"] == parallel["mean_success_rate"]


class TestToolCommands:
    def test_synth_and_disasm_roundtrip(self, tmp_path, capsys):
        elf_path = tmp_path / "bench.elf"
        assert main([
            "synth", "mcf", "--length", "64", "--out", str(elf_path)
        ]) == 0
        assert elf_path.exists()
        capsys.readouterr()
        assert main(["disasm", str(elf_path), "--limit", "4"]) == 0
        out = capsys.readouterr().out
        assert "lui $gp" in out

    def test_recover_command(self, capsys):
        assert main(["recover", "0x8fbf0018", "--bits", "1,4"]) == 0
        out = capsys.readouterr().out
        assert "lw $ra, 24($sp)" in out
        assert "chosen" in out

    def test_recover_rejects_bad_bits(self, capsys):
        assert main(["recover", "0x0", "--bits", "1"]) == 2

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestReportCommand:
    def test_report_runs_every_section(self, capsys):
        assert main(["report", "--instructions", "2"]) == 0
        out = capsys.readouterr().out
        for section in ("ISA legality", "code properties", "Fig. 4",
                        "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8"):
            assert section in out, section


class TestServeCommand:
    def test_serve_wraps_a_command(self, capsys):
        assert main(["serve", "--port", "0", "fig4"]) == 0
        captured = capsys.readouterr()
        assert "Fig. 4" in captured.out
        assert "serving observability on http://127.0.0.1:" in captured.err

    def test_serve_without_command_errors(self, capsys):
        assert main(["serve", "--port", "0"]) == 2
        assert "serve needs a command" in capsys.readouterr().err

    def test_serve_of_serve_errors(self, capsys):
        assert main(["serve", "--port", "0", "serve", "fig4"]) == 2
        assert "serve needs a command" in capsys.readouterr().err

    def test_serve_flag_on_sweep(self, capsys):
        assert main([
            "sweep", "--benchmark", "mcf", "--instructions", "2",
            "--length", "64", "--serve", "0",
        ]) == 0
        captured = capsys.readouterr()
        assert "mean recovery rate" in captured.out
        assert "serving observability on" in captured.err

    def test_serve_flag_releases_port(self):
        # Running the same ephemeral-port sweep twice would fail if the
        # first invocation leaked its server.
        argv = ["sweep", "--benchmark", "mcf", "--instructions", "2",
                "--length", "64", "--serve", "0"]
        assert main(argv) == 0
        assert main(argv) == 0


class TestLogJsonFlag:
    def test_log_json_writes_parseable_lines(self, tmp_path, capsys):
        import json

        path = tmp_path / "sweep.jsonl"
        assert main([
            "sweep", "--benchmark", "mcf", "--instructions", "2",
            "--length", "64", "--log-json", str(path),
        ]) == 0
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines, "expected at least one structured log line"
        chunk_lines = [l for l in lines if l["msg"] == "sweep chunk completed"]
        assert chunk_lines
        assert chunk_lines[0]["benchmark"] == "mcf"
        assert chunk_lines[0]["logger"] == "repro.analysis.sweep"
        for line in lines:
            assert {"ts", "level", "logger", "msg"} <= set(line)

    def test_log_json_handler_does_not_stack(self, tmp_path):
        # Two in-process invocations must not duplicate lines in the
        # second file (the CLI detaches its handler on exit).
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        argv = ["sweep", "--benchmark", "mcf", "--instructions", "2",
                "--length", "64"]
        assert main(argv + ["--log-json", str(first)]) == 0
        assert main(argv + ["--log-json", str(second)]) == 0
        assert len(first.read_text().splitlines()) == \
            len(second.read_text().splitlines())


class TestProgressFlag:
    def test_progress_writes_final_line(self, capsys):
        assert main([
            "sweep", "--benchmark", "mcf", "--instructions", "2",
            "--length", "64", "--progress",
        ]) == 0
        captured = capsys.readouterr()
        assert "mean recovery rate" in captured.out
        final = captured.err.splitlines()[-1].split("\r")[-1]
        assert "patterns" in final
        assert final.endswith("done")

    def test_no_progress_keeps_stderr_quiet(self, capsys):
        assert main([
            "sweep", "--benchmark", "mcf", "--instructions", "2",
            "--length", "64",
        ]) == 0
        assert capsys.readouterr().err == ""


class TestServerTeardownOnFailure:
    """The ObsServer must release its port when the wrapped command
    raises — whichever spelling (--serve PORT or serve <command>)
    started it."""

    @pytest.fixture()
    def recording_server(self, monkeypatch):
        import repro.cli as cli_module
        from repro.obs.server import ObsServer

        created = []

        class RecordingServer(ObsServer):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                created.append(self)

        monkeypatch.setattr(cli_module, "ObsServer", RecordingServer)
        return created

    def test_serve_flag_stops_server_on_dispatch_error(
        self, monkeypatch, recording_server, capsys
    ):
        import repro.cli as cli_module

        def exploding_dispatch(args):
            raise RuntimeError("command blew up")

        monkeypatch.setattr(cli_module, "_dispatch", exploding_dispatch)
        with pytest.raises(RuntimeError, match="command blew up"):
            main(["sweep", "--instructions", "2", "--length", "64",
                  "--serve", "0"])
        capsys.readouterr()
        assert len(recording_server) == 1
        assert not recording_server[0].running

    def test_serve_wrapper_stops_server_on_dispatch_error(
        self, monkeypatch, recording_server, capsys
    ):
        import repro.cli as cli_module

        def exploding_dispatch(args):
            raise RuntimeError("command blew up")

        monkeypatch.setattr(cli_module, "_dispatch", exploding_dispatch)
        with pytest.raises(RuntimeError, match="command blew up"):
            main(["serve", "--port", "0", "fig4"])
        capsys.readouterr()
        assert len(recording_server) == 1
        assert not recording_server[0].running

    def test_serve_flag_stops_server_when_tracing_setup_fails(
        self, monkeypatch, recording_server, capsys
    ):
        # A failure *between* server start and dispatch (the historical
        # leak: enable_tracing ran outside the try/finally).
        import repro.cli as cli_module

        def exploding_tracing():
            raise RuntimeError("tracing unavailable")

        monkeypatch.setattr(
            cli_module.obs_trace, "enable_tracing", exploding_tracing
        )
        with pytest.raises(RuntimeError, match="tracing unavailable"):
            main(["sweep", "--instructions", "2", "--length", "64",
                  "--serve", "0", "--trace"])
        capsys.readouterr()
        assert len(recording_server) == 1
        assert not recording_server[0].running


class TestServeRecoveryCommand:
    def test_serve_recovery_runs_for_duration(self, capsys):
        assert main([
            "serve-recovery", "--port", "0", "--duration", "0.05",
        ]) == 0
        err = capsys.readouterr().err
        assert "recovery service on http://127.0.0.1:" in err

    def test_serve_recovery_answers_requests(self, capsys, monkeypatch):
        import json
        import threading
        import urllib.request

        import repro.cli as cli_module
        from repro.ecc import canonical_secded_39_32

        answered = {}

        real_sleep = cli_module.time.sleep

        def probing_sleep(seconds):
            # Stand in for the serve loop: fire one request, then let
            # the duration elapse normally.
            if "status" not in answered:
                banner = capsys.readouterr().err
                port = int(banner.rsplit(":", 1)[1].split()[0])
                code = canonical_secded_39_32()
                due = code.encode(0xCAFE) ^ 0b101
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/recover",
                    data=json.dumps({"received": due}).encode(),
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=10) as resp:
                    answered["status"] = resp.status
                    answered["body"] = json.load(resp)
            real_sleep(min(seconds, 0.01))

        monkeypatch.setattr(cli_module.time, "sleep", probing_sleep)
        assert main([
            "serve-recovery", "--port", "0", "--duration", "0.2",
        ]) == 0
        assert answered["status"] == 200
        assert answered["body"]["result"]["status"] == "recovered"

    def test_serve_recovery_stops_service_on_error(self, monkeypatch, capsys):
        import repro.cli as cli_module
        from repro.service import RecoveryService

        created = []
        real_start = RecoveryService.start

        def recording_start(self):
            created.append(self)
            return real_start(self)

        monkeypatch.setattr(RecoveryService, "start", recording_start)

        def exploding_sleep(seconds):
            raise RuntimeError("the loop died")

        monkeypatch.setattr(cli_module.time, "sleep", exploding_sleep)
        with pytest.raises(RuntimeError, match="the loop died"):
            main(["serve-recovery", "--port", "0", "--duration", "5"])
        capsys.readouterr()
        assert len(created) == 1
        assert not created[0].running
        assert not created[0].batcher.running


class TestResilienceMbuCommand:
    def test_mbu_renders_table(self, capsys):
        assert main([
            "resilience", "--mbu", "--trials", "1", "--epochs", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "Adjacent-MBU study" in out
        assert "static-secded-39-32" in out
        assert "static-daec-41-32" in out
        assert "adaptive" in out
        assert "adjacent-bursts" in out

    def test_mbu_json(self, capsys):
        import json

        assert main([
            "resilience", "--mbu", "--trials", "1", "--epochs", "8",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mbu"] is True
        arms = payload["profiles"]["random-doubles"]
        assert set(arms) == {
            "static-secded-39-32", "static-daec-41-32", "adaptive"
        }

    def test_mbu_record_appends(self, capsys, tmp_path):
        import json

        path = tmp_path / "BENCH_sweep.json"
        assert main([
            "resilience", "--mbu", "--trials", "1", "--epochs", "8",
            "--record", str(path),
        ]) == 0
        capsys.readouterr()
        history = json.loads(path.read_text())
        assert len(history) == 1
        assert history[0]["study"] == "mbu"
        assert history[0]["epochs"] == 8

    def test_record_without_mbu_rejected(self, capsys):
        assert main(["resilience", "--record", "x.json"]) == 2
        assert "--mbu" in capsys.readouterr().err
