"""Unit and property tests for GF(2) linear algebra."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ecc.gf2 import GF2Matrix, from_columns, from_rows, identity, zeros


def small_matrix(max_dim: int = 6):
    """Hypothesis strategy for small GF(2) matrices."""
    return st.integers(1, max_dim).flatmap(
        lambda rows: st.integers(1, max_dim).flatmap(
            lambda cols: st.lists(
                st.integers(0, (1 << cols) - 1), min_size=rows, max_size=rows
            ).map(lambda data: GF2Matrix(data, cols))
        )
    )


class TestConstruction:
    def test_from_rows_and_entries(self):
        m = from_rows([[1, 0, 1], [0, 1, 1]])
        assert m.shape == (2, 3)
        assert m.entry(0, 0) == 1
        assert m.entry(0, 1) == 0
        assert m.entry(1, 2) == 1

    def test_row_value_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            GF2Matrix([0b1000], 3)

    def test_from_rows_ragged_rejected(self):
        with pytest.raises(ValueError):
            from_rows([[1, 0], [1]])

    def test_from_rows_non_binary_rejected(self):
        with pytest.raises(ValueError):
            from_rows([[1, 2]])

    def test_from_columns_matches_columns(self):
        m = from_rows([[1, 0, 1], [0, 1, 1]])
        rebuilt = from_columns(m.columns(), m.num_rows)
        assert rebuilt == m

    def test_identity_and_zeros(self):
        assert identity(3) == from_rows([[1, 0, 0], [0, 1, 0], [0, 0, 1]])
        assert zeros(2, 3).is_zero()


class TestAlgebra:
    def test_addition_is_xor(self):
        a = from_rows([[1, 1], [0, 1]])
        b = from_rows([[1, 0], [1, 1]])
        assert a + b == from_rows([[0, 1], [1, 0]])

    def test_addition_shape_mismatch(self):
        with pytest.raises(ValueError):
            identity(2) + identity(3)

    def test_matmul_identity(self):
        m = from_rows([[1, 0, 1], [0, 1, 1]])
        assert m @ identity(3) == m
        assert identity(2) @ m == m

    def test_matmul_known_product(self):
        a = from_rows([[1, 1], [0, 1]])
        b = from_rows([[1, 0], [1, 1]])
        assert a @ b == from_rows([[0, 1], [1, 1]])

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            identity(2) @ from_rows([[1, 0, 0]])

    def test_mul_vector_is_syndrome_like(self):
        h = from_rows([[1, 1, 0], [1, 0, 1]])
        assert h.mul_vector(0b100) == 0b11
        assert h.mul_vector(0b110) == 0b01

    def test_left_mul_vector_is_encoding_like(self):
        g = from_rows([[1, 0, 1, 1], [0, 1, 0, 1]])
        assert g.left_mul_vector(0b10) == 0b1011
        assert g.left_mul_vector(0b11) == 0b1110

    def test_vector_width_checked(self):
        with pytest.raises(ValueError):
            identity(3).mul_vector(0b1000)
        with pytest.raises(ValueError):
            identity(3).left_mul_vector(0b1000)

    @given(small_matrix(), small_matrix())
    def test_transpose_reverses_product(self, a, b):
        if a.num_cols != b.num_rows:
            return
        assert (a @ b).transpose() == b.transpose() @ a.transpose()

    @given(small_matrix())
    def test_transpose_involution(self, m):
        assert m.transpose().transpose() == m

    @given(small_matrix())
    def test_addition_self_inverse(self, m):
        assert (m + m).is_zero()


class TestElimination:
    def test_rank_of_identity(self):
        assert identity(5).rank() == 5

    def test_rank_of_dependent_rows(self):
        m = from_rows([[1, 0, 1], [0, 1, 1], [1, 1, 0]])  # row3 = row1+row2
        assert m.rank() == 2

    def test_null_space_annihilated(self):
        m = from_rows([[1, 0, 1], [0, 1, 1], [1, 1, 0]])
        basis = m.null_space()
        assert basis.num_rows == 1
        for row in basis.rows:
            assert m.mul_vector(row) == 0

    @given(small_matrix())
    def test_rank_nullity_theorem(self, m):
        assert m.rank() + m.null_space().num_rows == m.num_cols

    @given(small_matrix())
    def test_null_space_vectors_annihilated(self, m):
        for row in m.null_space().rows:
            assert m.mul_vector(row) == 0

    @given(small_matrix())
    def test_rref_preserves_rank(self, m):
        reduced, pivots = m.rref()
        assert len(pivots) == m.rank()
        assert reduced.rank() == m.rank()


class TestStructure:
    def test_hstack_vstack(self):
        a = from_rows([[1, 0], [0, 1]])
        b = from_rows([[1, 1], [0, 0]])
        assert a.hstack(b) == from_rows([[1, 0, 1, 1], [0, 1, 0, 0]])
        assert a.vstack(b).shape == (4, 2)

    def test_hstack_mismatch(self):
        with pytest.raises(ValueError):
            identity(2).hstack(identity(3))

    def test_submatrix_columns_reorders(self):
        m = from_rows([[1, 0, 1], [0, 1, 1]])
        sub = m.submatrix_columns([2, 0])
        assert sub == from_rows([[1, 1], [1, 0]])

    def test_column_and_row_weights(self):
        m = from_rows([[1, 1, 0], [1, 0, 1]])
        assert m.column_weights() == (2, 1, 1)
        assert m.row_weights() == (2, 2)

    def test_render_and_lists(self):
        m = from_rows([[1, 0], [1, 1]])
        assert m.render() == "10\n11"
        assert m.to_lists() == [[1, 0], [1, 1]]

    def test_hashable_and_eq(self):
        a = from_rows([[1, 0]])
        b = from_rows([[1, 0]])
        assert a == b and hash(a) == hash(b)
        assert a != from_rows([[0, 1]])
