"""Tests for the baseline single-parity and repetition codes."""

from __future__ import annotations

import pytest

from repro.ecc.code import DecodeStatus
from repro.ecc.parity import repetition_code, single_parity_code
from repro.errors import CodeConstructionError


class TestSingleParity:
    def test_parameters(self):
        code = single_parity_code(8)
        assert (code.n, code.k, code.r) == (9, 8, 1)

    def test_even_parity_codewords(self):
        code = single_parity_code(4)
        for message in range(16):
            assert bin(code.encode(message)).count("1") % 2 == 0

    def test_detects_all_single_errors_without_correcting(self):
        code = single_parity_code(8)
        codeword = code.encode(0xA5)
        for position in range(code.n):
            received = codeword ^ (1 << (code.n - 1 - position))
            assert code.decode(received).status is DecodeStatus.DUE

    def test_misses_double_errors(self):
        # The classic parity failure: even-weight errors are invisible.
        code = single_parity_code(8)
        codeword = code.encode(0xA5)
        received = codeword ^ 0b11
        result = code.decode(received)
        assert result.status is DecodeStatus.OK
        assert result.message != 0xA5

    def test_rejects_empty_message(self):
        with pytest.raises(CodeConstructionError):
            single_parity_code(0)


class TestRepetition:
    def test_parameters(self):
        code = repetition_code(3)
        assert (code.n, code.k) == (3, 1)
        assert code.minimum_distance() == 3

    def test_corrects_any_single_flip(self):
        code = repetition_code(3)
        for message in (0, 1):
            codeword = code.encode(message)
            for position in range(3):
                received = codeword ^ (1 << (2 - position))
                result = code.decode(received)
                assert result.status is DecodeStatus.CORRECTED
                assert result.message == message

    def test_rejects_even_or_tiny_copy_counts(self):
        with pytest.raises(CodeConstructionError):
            repetition_code(2)
        with pytest.raises(CodeConstructionError):
            repetition_code(1)

    def test_five_copies_has_distance_5(self):
        assert repetition_code(5).minimum_distance() == 5
