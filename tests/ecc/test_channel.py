"""Tests for the BSC channel model and error-pattern enumeration."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits import pair_index
from repro.ecc.channel import (
    AdjacentBurstChannel,
    BinarySymmetricChannel,
    adjacent_burst_patterns,
    double_bit_patterns,
    exhaustive_error_patterns,
    pattern_from_positions,
    pattern_from_vector,
)


class TestExhaustivePatterns:
    def test_double_bit_count_and_order(self):
        patterns = double_bit_patterns(39)
        assert len(patterns) == 741
        assert patterns[0].positions == (0, 1)
        assert patterns[1].positions == (0, 2)
        assert patterns[-1].positions == (37, 38)

    def test_indices_match_pair_index(self):
        for pattern in double_bit_patterns(39):
            i, j = pattern.positions
            assert pattern.index == pair_index(i, j, 39)

    def test_vectors_match_positions(self):
        for pattern in double_bit_patterns(10):
            expected = 0
            for position in pattern.positions:
                expected |= 1 << (9 - position)
            assert pattern.vector == expected

    def test_weight_property(self):
        for weight in (0, 1, 3):
            for pattern in exhaustive_error_patterns(8, weight):
                assert pattern.weight == weight

    def test_apply_is_xor(self):
        pattern = double_bit_patterns(8)[0]
        assert pattern.apply(0) == pattern.vector
        assert pattern.apply(pattern.vector) == 0

    def test_apply_rejects_oversized_word(self):
        pattern = double_bit_patterns(8)[0]
        with pytest.raises(ValueError):
            pattern.apply(1 << 8)


class TestPatternFactories:
    def test_from_positions(self):
        pattern = pattern_from_positions((0, 38), 39)
        assert pattern.vector == (1 << 38) | 1
        assert pattern.index == pair_index(0, 38, 39)

    def test_from_positions_rejects_duplicates(self):
        with pytest.raises(ValueError):
            pattern_from_positions((3, 3), 39)

    def test_from_positions_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pattern_from_positions((0, 39), 39)

    def test_from_vector(self):
        pattern = pattern_from_vector(0b11, 39)
        assert pattern.positions == (37, 38)
        assert pattern.index == 740

    def test_from_vector_non_double_has_no_index(self):
        assert pattern_from_vector(0b111, 39).index == -1


class TestBsc:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            BinarySymmetricChannel(1.5, 39)
        with pytest.raises(ValueError):
            BinarySymmetricChannel(-0.1, 39)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            BinarySymmetricChannel(0.1, 0)

    def test_zero_probability_never_flips(self):
        channel = BinarySymmetricChannel(0.0, 39, rng=random.Random(0))
        for _ in range(20):
            assert channel.sample_error().weight == 0

    def test_one_probability_always_flips_everything(self):
        channel = BinarySymmetricChannel(1.0, 16, rng=random.Random(0))
        error = channel.sample_error()
        assert error.weight == 16

    def test_seeded_reproducibility(self):
        a = BinarySymmetricChannel(0.3, 39, rng=random.Random(42))
        b = BinarySymmetricChannel(0.3, 39, rng=random.Random(42))
        for _ in range(10):
            assert a.sample_error().vector == b.sample_error().vector

    def test_sample_of_weight(self):
        channel = BinarySymmetricChannel(0.5, 39, rng=random.Random(1))
        for _ in range(50):
            error = channel.sample_error_of_weight(2)
            assert error.weight == 2
            assert 0 <= error.index < 741

    def test_sample_of_weight_bounds(self):
        channel = BinarySymmetricChannel(0.5, 8, rng=random.Random(1))
        with pytest.raises(ValueError):
            channel.sample_error_of_weight(9)

    def test_transmit_returns_consistent_pair(self):
        channel = BinarySymmetricChannel(0.2, 16, rng=random.Random(7))
        word = 0xA5A5
        received, error = channel.transmit(word)
        assert received == word ^ error.vector

    @given(st.integers(0, 2**16 - 1))
    def test_double_flip_statistics(self, seed):
        channel = BinarySymmetricChannel(0.5, 39, rng=random.Random(seed))
        error = channel.sample_error_of_weight(2)
        assert error.positions[0] < error.positions[1]


class TestAdjacentBurstPatterns:
    def test_count_and_contiguity(self):
        patterns = adjacent_burst_patterns(39, 2)
        assert len(patterns) == 38
        for start, pattern in enumerate(patterns):
            assert pattern.index == start
            assert pattern.positions == (start, start + 1)

    def test_length_three(self):
        patterns = adjacent_burst_patterns(10, 3)
        assert len(patterns) == 8
        assert patterns[0].positions == (0, 1, 2)
        assert patterns[-1].positions == (7, 8, 9)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            adjacent_burst_patterns(8, 0)
        with pytest.raises(ValueError):
            adjacent_burst_patterns(8, 9)


class TestAdjacentBurstChannel:
    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            AdjacentBurstChannel(0)

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            AdjacentBurstChannel(8, burst_lengths={})
        with pytest.raises(ValueError):
            AdjacentBurstChannel(8, burst_lengths={9: 1.0})
        with pytest.raises(ValueError):
            AdjacentBurstChannel(8, burst_lengths={2: 0.0})
        with pytest.raises(ValueError):
            AdjacentBurstChannel(8, burst_lengths={2: -1.0})

    def test_weights_normalized(self):
        channel = AdjacentBurstChannel(16, burst_lengths={2: 3.0, 3: 1.0})
        assert channel.burst_lengths == {2: 0.75, 3: 0.25}

    def test_samples_are_contiguous(self):
        channel = AdjacentBurstChannel(39, rng=random.Random(11))
        for _ in range(200):
            error = channel.sample_error()
            first, last = error.positions[0], error.positions[-1]
            assert error.positions == tuple(range(first, last + 1))
            assert error.index == first
            assert error.weight in AdjacentBurstChannel.DEFAULT_BURST_LENGTHS

    def test_length_distribution(self):
        channel = AdjacentBurstChannel(
            39, burst_lengths={2: 0.75, 3: 0.25}, rng=random.Random(3)
        )
        lengths = [channel.sample_length() for _ in range(2000)]
        fraction = lengths.count(2) / len(lengths)
        assert 0.70 < fraction < 0.80

    def test_seeded_reproducibility(self):
        a = AdjacentBurstChannel(39, rng=random.Random(5))
        b = AdjacentBurstChannel(39, rng=random.Random(5))
        assert [a.sample_error().vector for _ in range(50)] == [
            b.sample_error().vector for _ in range(50)
        ]

    def test_transmit_returns_consistent_pair(self):
        channel = AdjacentBurstChannel(16, rng=random.Random(7))
        received, error = channel.transmit(0xA5A5)
        assert received == 0xA5A5 ^ error.vector
