"""Tests for Hamming, extended Hamming, and Hsiao SECDED constructions."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import popcount
from repro.ecc.code import DecodeStatus
from repro.ecc.hamming import (
    extended_hamming_secded,
    hamming_code,
    parity_bits_for,
    shortened_hamming_code,
)
from repro.ecc.hsiao import hsiao_39_32, hsiao_72_64, hsiao_code, is_hsiao
from repro.errors import CodeConstructionError


class TestParityBits:
    @pytest.mark.parametrize(
        "k,expected", [(1, 2), (4, 3), (11, 4), (26, 5), (32, 6), (57, 6), (64, 7)]
    )
    def test_known_values(self, k, expected):
        assert parity_bits_for(k) == expected

    def test_rejects_non_positive(self):
        with pytest.raises(CodeConstructionError):
            parity_bits_for(0)


class TestHammingFamily:
    @pytest.mark.parametrize("r", [3, 4, 5])
    def test_perfect_hamming_distance_3(self, r):
        code = hamming_code(r)
        assert code.n == (1 << r) - 1
        assert code.verify_minimum_distance(3)
        assert not code.verify_minimum_distance(4)

    def test_shortened_hamming_32(self):
        code = shortened_hamming_code(32)
        assert (code.n, code.k) == (38, 32)
        assert code.verify_minimum_distance(3)

    def test_shortening_cannot_use_too_few_parity_bits(self):
        with pytest.raises(CodeConstructionError):
            shortened_hamming_code(32, r=5)

    def test_extended_hamming_39_32_is_secded(self):
        code = extended_hamming_secded(32)
        assert (code.n, code.k) == (39, 32)
        assert code.verify_minimum_distance(4)
        assert not code.verify_minimum_distance(5)

    def test_extended_hamming_corrects_1_detects_2(self):
        code = extended_hamming_secded(8)  # (13, 8), small enough to sweep
        for message in (0, 0xA5, 0xFF):
            codeword = code.encode(message)
            for position in range(code.n):
                received = codeword ^ (1 << (code.n - 1 - position))
                result = code.decode(received)
                assert result.status is DecodeStatus.CORRECTED
                assert result.message == message
            for i, j in itertools.combinations(range(code.n), 2):
                received = (
                    codeword
                    ^ (1 << (code.n - 1 - i))
                    ^ (1 << (code.n - 1 - j))
                )
                assert code.decode(received).status is DecodeStatus.DUE


class TestHsiao:
    def test_hsiao_39_32_parameters(self):
        code = hsiao_39_32()
        assert (code.n, code.k, code.r) == (39, 32, 7)
        assert code.verify_minimum_distance(4)
        assert not code.verify_minimum_distance(5)

    def test_all_columns_odd_weight(self):
        code = hsiao_39_32()
        assert is_hsiao(code)
        assert all(popcount(c) & 1 for c in code.column_syndromes)

    def test_columns_distinct(self):
        code = hsiao_39_32()
        assert len(set(code.column_syndromes)) == code.n

    def test_row_weights_balanced(self):
        # Hsiao's design goal: per-row popcounts of H differ by at most
        # a small constant (here: 1 for the data part + identity).
        code = hsiao_39_32()
        weights = code.parity_check.row_weights()
        assert max(weights) - min(weights) <= 1

    def test_hsiao_72_64(self):
        code = hsiao_72_64()
        assert (code.n, code.k) == (72, 64)
        assert code.verify_minimum_distance(4)
        assert is_hsiao(code)

    def test_infeasible_parameters_rejected(self):
        with pytest.raises(CodeConstructionError):
            hsiao_code(34, 32)  # r = 2
        with pytest.raises(CodeConstructionError):
            hsiao_code(36, 32)  # r = 4: only C(4,3)=4 odd columns >= w3

    def test_construction_is_deterministic(self):
        assert hsiao_39_32().column_syndromes == hsiao_39_32().column_syndromes

    @given(st.integers(0, 2**32 - 1), st.data())
    @settings(max_examples=40)
    def test_secded_contract_randomized(self, message, data):
        code = hsiao_39_32()
        codeword = code.encode(message)
        weight = data.draw(st.integers(0, 2))
        positions = data.draw(
            st.lists(
                st.integers(0, code.n - 1),
                min_size=weight,
                max_size=weight,
                unique=True,
            )
        )
        received = codeword
        for position in positions:
            received ^= 1 << (code.n - 1 - position)
        result = code.decode(received)
        if weight == 0:
            assert result.status is DecodeStatus.OK
        elif weight == 1:
            assert result.status is DecodeStatus.CORRECTED
            assert result.message == message
        else:
            assert result.status is DecodeStatus.DUE
