"""Field-axiom and structure tests for GF(2^m)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ecc.gf2m import (
    GF2mField,
    poly_degree,
    poly_divmod,
    poly_mod,
    poly_mul,
)
from repro.errors import CodeConstructionError

FIELD = GF2mField(6)  # the BCH evaluation field

elements = st.integers(0, FIELD.order)
nonzero = st.integers(1, FIELD.order)


class TestBinaryPolynomials:
    def test_degree(self):
        assert poly_degree(0) == -1
        assert poly_degree(1) == 0
        assert poly_degree(0b1011) == 3

    def test_mul_known(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2)
        assert poly_mul(0b11, 0b11) == 0b101

    def test_divmod_identity(self):
        dividend = 0b1101101
        divisor = 0b1011
        quotient, remainder = poly_divmod(dividend, divisor)
        assert poly_mul(quotient, divisor) ^ remainder == dividend
        assert poly_degree(remainder) < poly_degree(divisor)

    def test_mod_zero_divisor(self):
        with pytest.raises(ZeroDivisionError):
            poly_mod(0b101, 0)

    @given(st.integers(0, 2**12 - 1), st.integers(1, 2**6 - 1))
    def test_divmod_property(self, dividend, divisor):
        quotient, remainder = poly_divmod(dividend, divisor)
        assert poly_mul(quotient, divisor) ^ remainder == dividend


class TestFieldConstruction:
    def test_default_fields_construct(self):
        for m in (3, 4, 5, 6, 8):
            field = GF2mField(m)
            assert field.size == 1 << m
            assert field.order == (1 << m) - 1

    def test_rejects_non_primitive(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive.
        with pytest.raises(CodeConstructionError):
            GF2mField(4, primitive_poly=0b11111)

    def test_rejects_wrong_degree(self):
        with pytest.raises(CodeConstructionError):
            GF2mField(4, primitive_poly=0b1011)

    def test_rejects_tiny_m(self):
        with pytest.raises(CodeConstructionError):
            GF2mField(1)


class TestFieldAxioms:
    @given(elements, elements, elements)
    def test_mul_associative(self, a, b, c):
        f = FIELD
        assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))

    @given(elements, elements)
    def test_mul_commutative(self, a, b):
        assert FIELD.mul(a, b) == FIELD.mul(b, a)

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        f = FIELD
        assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))

    @given(nonzero)
    def test_inverse(self, a):
        assert FIELD.mul(a, FIELD.inv(a)) == 1

    @given(elements)
    def test_add_self_inverse(self, a):
        assert FIELD.add(a, a) == 0

    @given(elements)
    def test_mul_identity_and_zero(self, a):
        assert FIELD.mul(a, 1) == a
        assert FIELD.mul(a, 0) == 0

    def test_inv_of_zero(self):
        with pytest.raises(ZeroDivisionError):
            FIELD.inv(0)

    @given(nonzero, st.integers(-20, 20))
    def test_pow_matches_repeated_mul(self, a, exponent):
        expected = 1
        base = a if exponent >= 0 else FIELD.inv(a)
        for _ in range(abs(exponent)):
            expected = FIELD.mul(expected, base)
        assert FIELD.pow(a, exponent) == expected

    def test_element_range_checked(self):
        with pytest.raises(ValueError):
            FIELD.mul(1 << 6, 1)


class TestFieldStructure:
    def test_alpha_generates_the_group(self):
        seen = {FIELD.alpha_power(i) for i in range(FIELD.order)}
        assert len(seen) == FIELD.order
        assert 0 not in seen

    def test_log_alpha_inverts_alpha_power(self):
        for exponent in range(FIELD.order):
            assert FIELD.log_alpha(FIELD.alpha_power(exponent)) == exponent

    def test_cyclotomic_coset_closed_under_doubling(self):
        coset = FIELD.cyclotomic_coset(1)
        for element in coset:
            assert (element * 2) % FIELD.order in coset

    def test_cyclotomic_coset_of_zero(self):
        assert FIELD.cyclotomic_coset(0) == (0,)

    def test_minimal_polynomial_of_alpha_is_the_field_poly(self):
        assert FIELD.minimal_polynomial(1) == FIELD.primitive_poly

    def test_minimal_polynomial_annihilates_all_conjugates(self):
        for s in (1, 3, 5):
            poly = FIELD.minimal_polynomial(s)
            coefficients = [
                (poly >> degree) & 1 for degree in range(poly_degree(poly) + 1)
            ]
            for conjugate in FIELD.cyclotomic_coset(s):
                root = FIELD.alpha_power(conjugate)
                assert FIELD.poly_eval(coefficients, root) == 0

    def test_poly_eval_horner(self):
        # p(x) = x^2 + x + 1 at x = alpha: alpha^2 + alpha + 1.
        alpha = FIELD.alpha_power(1)
        expected = FIELD.mul(alpha, alpha) ^ alpha ^ 1
        assert FIELD.poly_eval([1, 1, 1], alpha) == expected
