"""Tests for candidate-codeword enumeration (the SWD-ECC substrate)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import popcount
from repro.ecc.candidates import CandidateEnumerator, candidate_count_profile
from repro.ecc.bch import dected_code
from repro.ecc.hamming import hamming_code
from repro.errors import DecodingError


def two_positions(n: int):
    return st.lists(
        st.integers(0, n - 1), min_size=2, max_size=2, unique=True
    ).map(tuple)


class TestEnumeration:
    def test_true_codeword_always_included(self, code, enumerator):
        message = 0x1234_5678
        codeword = code.encode(message)
        received = codeword ^ (1 << 38) ^ (1 << 10)
        candidates = enumerator.candidates(received)
        assert codeword in candidates

    @given(st.integers(0, 2**32 - 1), st.data())
    @settings(max_examples=60)
    def test_true_codeword_included_property(self, message, data):
        from repro.ecc.matrices import canonical_secded_39_32

        code = canonical_secded_39_32()
        enumerator = CandidateEnumerator(code)
        i, j = data.draw(two_positions(code.n))
        codeword = code.encode(message)
        received = codeword ^ (1 << (38 - i)) ^ (1 << (38 - j))
        candidates = enumerator.candidates(received)
        assert codeword in candidates
        # Every candidate is a codeword at Hamming distance exactly 2.
        for candidate in candidates:
            assert code.is_codeword(candidate)
            assert popcount(candidate ^ received) == 2

    def test_candidates_sorted_and_unique(self, code, enumerator):
        received = code.encode(0xDEADBEEF) ^ 0b101
        candidates = enumerator.candidates(received)
        assert list(candidates) == sorted(set(candidates))

    def test_rejects_clean_codeword(self, code, enumerator):
        with pytest.raises(DecodingError):
            enumerator.candidates(code.encode(42))

    def test_rejects_correctable_word(self, code, enumerator):
        with pytest.raises(DecodingError):
            enumerator.candidates(code.encode(42) ^ 1)

    def test_rejects_oversized_word(self, enumerator):
        with pytest.raises(DecodingError):
            enumerator.candidates(1 << 39)

    def test_candidate_messages_match_candidates(self, code, enumerator):
        received = code.encode(7) ^ (1 << 38) ^ (1 << 2)
        codewords = enumerator.candidates(received)
        messages = enumerator.candidate_messages(received)
        assert messages == tuple(code.extract_message(c) for c in codewords)

    def test_enumeration_completeness_small_code(self):
        # For the tiny (8, 4) extended Hamming SECDED code we can
        # brute-force the truth: the candidates of a 2-bit DUE are
        # exactly the codewords at Hamming distance 2.
        from itertools import combinations

        from repro.ecc.hamming import extended_hamming_secded

        code = extended_hamming_secded(4)
        enumerator = CandidateEnumerator(code)
        all_codewords = set(code.codewords())
        for message in range(16):
            codeword = code.encode(message)
            for i, j in combinations(range(code.n), 2):
                received = (
                    codeword
                    ^ (1 << (code.n - 1 - i))
                    ^ (1 << (code.n - 1 - j))
                )
                assert code.decode(received).status.name == "DUE"
                expected = {
                    c for c in all_codewords if popcount(c ^ received) == 2
                }
                assert set(enumerator.candidates(received)) == expected


class TestCandidateCountProfile:
    def test_matches_paper_fig4(self, code):
        profile = candidate_count_profile(code)
        assert profile.num_patterns == 741
        assert profile.minimum == 8
        assert profile.maximum == 15
        assert 11.5 <= profile.mean <= 12.5

    def test_profile_message_independent(self, code, enumerator):
        # Linearity: counts for (i, j) equal counts for the same pattern
        # applied to any codeword.
        profile = candidate_count_profile(code)
        codeword = code.encode(0xCAFEBABE)
        for i, j in [(0, 1), (5, 20), (31, 38), (10, 11)]:
            received = codeword ^ (1 << (38 - i)) ^ (1 << (38 - j))
            assert len(enumerator.candidates(received)) == profile.counts[(i, j)]

    def test_as_matrix_symmetric(self, code):
        profile = candidate_count_profile(code)
        matrix = profile.as_matrix(39)
        for i in range(39):
            assert matrix[i][i] == 0
            for j in range(39):
                assert matrix[i][j] == matrix[j][i]


class TestRadiusEnumeration:
    def test_radius_2_agrees_with_fast_path(self, code, enumerator):
        received = code.encode(0x0BADF00D) ^ (1 << 38) ^ (1 << 3)
        fast = enumerator.candidates(received)
        slow = enumerator.candidates_within_radius(received, 2)
        assert set(fast) <= set(slow)
        # Radius search may also return codewords at distance < 2 (none
        # exist for a true DUE) so the sets must be equal here.
        assert set(fast) == set(slow)

    def test_dected_3bit_due_enumeration(self):
        code = dected_code()
        enumerator = CandidateEnumerator(code)
        codeword = code.encode(0x13572468)
        received = codeword ^ (1 << 44) ^ (1 << 20) ^ (1 << 3)
        assert code.decode(received).status.name == "DUE"
        candidates = enumerator.candidates_within_radius(received, 3)
        assert codeword in candidates
        for candidate in candidates:
            assert code.is_codeword(candidate)
            assert popcount(candidate ^ received) <= 3

    def test_negative_radius_rejected(self, enumerator):
        with pytest.raises(ValueError):
            enumerator.candidates_within_radius(0b11, -1)
