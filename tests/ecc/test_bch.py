"""Tests for BCH / DEC / DECTED codes and their algebraic decoder."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.bch import BCHCode, bch_generator_poly, dec_code, dected_code
from repro.ecc.code import DecodeStatus
from repro.ecc.gf2m import GF2mField, poly_degree
from repro.errors import CodeConstructionError


@pytest.fixture(scope="module")
def dec():
    return dec_code()  # (44, 32) t=2


@pytest.fixture(scope="module")
def dected():
    return dected_code()  # (45, 32) DECTED


class TestGeneratorPolynomial:
    def test_t1_is_the_hamming_polynomial(self):
        field = GF2mField(4)
        generator = bch_generator_poly(field, 1)
        assert generator == field.minimal_polynomial(1)

    def test_t2_degree(self):
        field = GF2mField(6)
        generator = bch_generator_poly(field, 2)
        # Two degree-6 minimal polynomials (for alpha and alpha^3).
        assert poly_degree(generator) == 12

    def test_t_must_be_positive(self):
        with pytest.raises(CodeConstructionError):
            bch_generator_poly(GF2mField(4), 0)


class TestConstruction:
    def test_dec_parameters(self, dec):
        assert (dec.n, dec.k, dec.r) == (44, 32, 12)
        assert dec.t == 2
        assert dec.correctable_bits() == 2

    def test_dected_parameters(self, dected):
        assert (dected.n, dected.k, dected.r) == (45, 32, 13)
        assert dected.extended

    def test_dec_distance_5(self, dec):
        assert dec.verify_minimum_distance(5)

    def test_dected_distance_6(self, dected):
        assert dected.verify_minimum_distance(6)

    def test_full_length_bch(self):
        code = BCHCode(m=5, t=2)  # (31, 21)
        assert (code.n, code.k) == (31, 21)
        assert code.verify_minimum_distance(5)

    def test_overshortening_rejected(self):
        with pytest.raises(CodeConstructionError):
            BCHCode(m=6, t=2, k=60)

    def test_all_generator_multiples_are_codewords(self, dec):
        # Spot check: systematic encoding is consistent with the cyclic
        # structure; every codeword's polynomial is divisible by g(x).
        from repro.ecc.gf2m import poly_mod

        for message in (1, 0xDEADBEEF, 0xFFFFFFFF):
            codeword = dec.encode(message)
            assert poly_mod(codeword, dec.generator_poly) == 0


class TestDecDecoding:
    @given(st.integers(0, 2**32 - 1), st.data())
    @settings(max_examples=60)
    def test_corrects_up_to_two_errors(self, message, data):
        code = dec_code()
        codeword = code.encode(message)
        weight = data.draw(st.integers(0, 2))
        positions = data.draw(
            st.lists(
                st.integers(0, code.n - 1),
                min_size=weight, max_size=weight, unique=True,
            )
        )
        received = codeword
        for position in positions:
            received ^= 1 << (code.n - 1 - position)
        result = code.decode(received)
        assert result.status in (DecodeStatus.OK, DecodeStatus.CORRECTED)
        assert result.message == message
        assert tuple(sorted(positions)) == result.corrected_positions

    def test_never_miscorrects_within_radius(self, dec):
        # For a handful of 3-bit errors, decoding either flags a DUE or
        # lands on a *different* codeword at distance <= 2 (bounded
        # distance decoding); it must never return a non-codeword.
        rng = random.Random(9)
        codeword = dec.encode(0x12345678)
        for _ in range(200):
            positions = rng.sample(range(dec.n), 3)
            received = codeword
            for position in positions:
                received ^= 1 << (dec.n - 1 - position)
            result = dec.decode(received)
            if result.status is DecodeStatus.CORRECTED:
                assert dec.is_codeword(result.codeword)


class TestDectedDecoding:
    def test_exhaustive_single_and_double(self, dected):
        codeword = dected.encode(0xA5A5_5A5A)
        for position in range(dected.n):
            received = codeword ^ (1 << (dected.n - 1 - position))
            result = dected.decode(received)
            assert result.status is DecodeStatus.CORRECTED
            assert result.message == 0xA5A5_5A5A
        for i, j in itertools.islice(
            itertools.combinations(range(dected.n), 2), 0, None, 7
        ):
            received = (
                codeword ^ (1 << (dected.n - 1 - i)) ^ (1 << (dected.n - 1 - j))
            )
            result = dected.decode(received)
            assert result.status is DecodeStatus.CORRECTED
            assert result.message == 0xA5A5_5A5A

    def test_all_triple_errors_detected(self, dected):
        codeword = dected.encode(0x0F0F_F0F0)
        rng = random.Random(3)
        for _ in range(400):
            positions = rng.sample(range(dected.n), 3)
            received = codeword
            for position in positions:
                received ^= 1 << (dected.n - 1 - position)
            assert dected.decode(received).status is DecodeStatus.DUE

    def test_parity_bit_error_alone_corrected(self, dected):
        codeword = dected.encode(0x13579BDF)
        received = codeword ^ 1  # the appended parity bit is position n-1
        result = dected.decode(received)
        assert result.status is DecodeStatus.CORRECTED
        assert result.message == 0x13579BDF

    def test_clean_word(self, dected):
        result = dected.decode(dected.encode(77))
        assert result.status is DecodeStatus.OK
        assert result.message == 77
