"""Property tests: syndrome memoization never changes enumeration.

The memoized enumerator must be observationally identical to a fresh
uncached one — for every DUE, for both the distance-2 fast path and the
radius-escalation search — because the sweep acceleration stack rests
entirely on that equivalence (see ``docs/performance.md``).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.ecc.candidates import CandidateEnumerator  # noqa: E402
from repro.ecc.matrices import canonical_secded_39_32  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402

CODE = canonical_secded_39_32()
# One memoized enumerator shared across examples — that is the point:
# its warm caches must never leak state between syndromes.
MEMOIZED = CandidateEnumerator(CODE, memoize=True)

messages = st.integers(min_value=0, max_value=(1 << CODE.k) - 1)
positions = st.lists(
    st.integers(min_value=0, max_value=CODE.n - 1),
    min_size=2, max_size=2, unique=True,
)
triple_positions = st.lists(
    st.integers(min_value=0, max_value=CODE.n - 1),
    min_size=3, max_size=3, unique=True,
)


def _corrupt(message: int, error_positions: list[int]) -> int:
    received = CODE.encode(message)
    for position in error_positions:
        received ^= 1 << (CODE.n - 1 - position)
    return received


@settings(max_examples=50, deadline=None)
@given(message=messages, error=positions)
def test_memoized_candidates_equal_fresh_uncached(message, error):
    received = _corrupt(message, error)
    fresh = CandidateEnumerator(CODE, memoize=False)
    assert MEMOIZED.candidates(received) == fresh.candidates(received)
    assert (
        MEMOIZED.candidate_messages(received)
        == fresh.candidate_messages(received)
    )


@settings(max_examples=50, deadline=None)
@given(message=messages, error=positions)
def test_original_codeword_always_enumerated(message, error):
    received = _corrupt(message, error)
    assert CODE.encode(message) in MEMOIZED.candidates(received)


@settings(max_examples=25, deadline=None)
@given(message=messages, error=triple_positions)
def test_memoized_radius_search_equals_fresh_uncached(message, error):
    # A 3-bit error can sit at distance >= 3 from every codeword; the
    # escalated search must agree with an uncached enumerator too.
    received = _corrupt(message, error)
    if CODE.syndrome(received) == 0:
        return  # the triple flip landed on a codeword; nothing to list
    fresh = CandidateEnumerator(CODE, memoize=False)
    radius = CODE.correctable_bits() + 2
    assert (
        MEMOIZED.candidates_within_radius(received, radius)
        == fresh.candidates_within_radius(received, radius)
    )


def test_cache_counters_advance_through_obs():
    registry = obs_metrics.MetricsRegistry()
    saved = obs_metrics.set_registry(registry)
    try:
        enumerator = CandidateEnumerator(CODE, memoize=True)
        received = _corrupt(0x12345678, [1, 4])
        enumerator.candidates(received)
        assert registry.counter("candidates.cache_misses").value == 1
        assert registry.counter("candidates.cache_hits").value == 0
        enumerator.candidates(received)
        enumerator.candidates(_corrupt(0x0, [1, 4]))  # same syndrome
        assert registry.counter("candidates.cache_hits").value == 2
        assert registry.counter("candidates.cache_misses").value == 1
    finally:
        obs_metrics.set_registry(saved)


def test_uncached_enumerator_reports_misses_only():
    registry = obs_metrics.MetricsRegistry()
    saved = obs_metrics.set_registry(registry)
    try:
        enumerator = CandidateEnumerator(CODE, memoize=False)
        received = _corrupt(0xDEADBEEF, [2, 7])
        enumerator.candidates(received)
        enumerator.candidates(received)
        assert registry.counter("candidates.cache_hits").value == 0
        assert registry.counter("candidates.cache_misses").value == 2
    finally:
        obs_metrics.set_registry(saved)
