"""Tests for the canonical frozen (39, 32) SECDED matrix."""

from __future__ import annotations

import pytest

from repro.bits import popcount
from repro.ecc.matrices import (
    CANONICAL_39_32_COLUMNS,
    canonical_secded_39_32,
    code_from_h_columns,
)
from repro.errors import CodeConstructionError


class TestCanonicalCode:
    def test_frozen_columns_are_loaded_exactly(self):
        code = canonical_secded_39_32()
        assert code.column_syndromes == CANONICAL_39_32_COLUMNS

    def test_parameters_and_distance(self):
        code = canonical_secded_39_32()
        assert (code.n, code.k, code.r) == (39, 32, 7)
        assert code.verify_minimum_distance(4)
        assert not code.verify_minimum_distance(5)

    def test_all_columns_odd_weight_hsiao_family(self):
        assert all(popcount(c) % 2 == 1 for c in CANONICAL_39_32_COLUMNS)

    def test_identity_tail(self):
        assert CANONICAL_39_32_COLUMNS[32:] == (64, 32, 16, 8, 4, 2, 1)

    def test_roundtrip(self):
        code = canonical_secded_39_32()
        for message in (0, 1, 0xFFFFFFFF, 0x80000001, 0x12345678):
            assert code.decode(code.encode(message)).message == message


class TestCodeFromColumns:
    def test_wrong_column_count_rejected(self):
        with pytest.raises(CodeConstructionError):
            code_from_h_columns(CANONICAL_39_32_COLUMNS[:-1], 32, 7, "bad")

    def test_non_identity_tail_rejected(self):
        columns = CANONICAL_39_32_COLUMNS[:32] + (1, 2, 4, 8, 16, 32, 64)
        with pytest.raises(CodeConstructionError):
            code_from_h_columns(columns, 32, 7, "bad")

    def test_reconstruction_matches_generator(self):
        # G @ H^T = 0 is asserted inside LinearBlockCode; additionally
        # check a hand-computed parity: codeword of message with a
        # single top bit equals [message | column of H for position 0].
        code = canonical_secded_39_32()
        codeword = code.encode(1 << 31)
        assert codeword >> 7 == 1 << 31
        assert codeword & 0x7F == CANONICAL_39_32_COLUMNS[0]


class TestProvenance:
    def test_frozen_matrix_matches_current_hsiao_construction(self):
        """The canonical matrix was frozen from hsiao_39_32(). If the
        greedy column selection ever changes, this test announces the
        drift: the frozen literals stay authoritative for experiments,
        but the divergence should be a conscious decision."""
        from repro.ecc.hsiao import hsiao_39_32

        assert hsiao_39_32().column_syndromes == CANONICAL_39_32_COLUMNS
