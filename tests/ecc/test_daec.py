"""SEC-DED-DAEC (41, 32): construction invariants and round trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.candidates import CandidateEnumerator
from repro.ecc.code import DecodeStatus
from repro.ecc.daec import (
    DAEC_41_32_COLUMNS,
    DaecCode,
    adjacent_pair_syndromes,
    adjacent_syndrome_set,
    daec_code,
)
from repro.ecc.matrices import canonical_secded_39_32
from repro.errors import CodeConstructionError

CODE = daec_code()

messages = st.integers(min_value=0, max_value=(1 << 32) - 1)
positions = st.integers(min_value=0, max_value=CODE.n - 1)
adjacent_starts = st.integers(min_value=0, max_value=CODE.n - 2)


def flip(codeword: int, *bit_positions: int) -> int:
    for position in bit_positions:
        codeword ^= 1 << (CODE.n - 1 - position)
    return codeword


class TestConstruction:
    def test_parameters(self):
        assert (CODE.n, CODE.k, CODE.r) == (41, 32, 9)
        assert CODE.name == "SEC-DED-DAEC (41,32)"

    def test_minimum_distance_four(self):
        assert CODE.verify_minimum_distance(4)

    def test_correctable_bits_stays_one(self):
        # Generic doubles must remain the DUE class (the words SWD-ECC
        # recovers); only *adjacent* doubles get the hardware branch.
        assert CODE.correctable_bits() == 1

    def test_wrong_column_count_rejected(self):
        with pytest.raises(CodeConstructionError, match="41 columns"):
            DaecCode(DAEC_41_32_COLUMNS[:-1], k=32, r=9)

    def test_non_identity_tail_rejected(self):
        columns = DAEC_41_32_COLUMNS[:-2] + (1, 2)
        with pytest.raises(CodeConstructionError, match="identity"):
            DaecCode(columns, k=32, r=9)

    def test_duplicate_column_rejected(self):
        columns = (
            DAEC_41_32_COLUMNS[0],
            DAEC_41_32_COLUMNS[0],
        ) + DAEC_41_32_COLUMNS[2:]
        with pytest.raises(CodeConstructionError, match="distinct"):
            DaecCode(columns, k=32, r=9)

    def test_hsiao_columns_fail_daec_check(self):
        # A plain SECDED column set has d >= 4 but shared pair sums, so
        # the uniqueness rule must reject it.
        secded = canonical_secded_39_32()
        columns = tuple(secded.column_syndromes)
        with pytest.raises(CodeConstructionError):
            DaecCode._verify_daec_property(columns, secded.r)


class TestHMatrixInvariants:
    """The zero-miscorrection uniqueness properties, re-derived."""

    def test_columns_distinct_nonzero(self):
        assert len(set(DAEC_41_32_COLUMNS)) == 41
        assert all(0 < c < 512 for c in DAEC_41_32_COLUMNS)

    def test_no_pair_sum_is_a_column(self):
        from itertools import combinations

        column_set = set(DAEC_41_32_COLUMNS)
        for a, b in combinations(DAEC_41_32_COLUMNS, 2):
            assert a ^ b not in column_set

    def test_adjacent_sums_distinct(self):
        sums = [
            DAEC_41_32_COLUMNS[i] ^ DAEC_41_32_COLUMNS[i + 1]
            for i in range(40)
        ]
        assert len(set(sums)) == 40

    def test_each_adjacent_sum_from_exactly_one_pair(self):
        from itertools import combinations

        adjacent = adjacent_syndrome_set(CODE)
        producers: dict[int, list[tuple[int, int]]] = {}
        for i, j in combinations(range(41), 2):
            s = DAEC_41_32_COLUMNS[i] ^ DAEC_41_32_COLUMNS[j]
            if s in adjacent:
                producers.setdefault(s, []).append((i, j))
        assert len(producers) == 40
        for s, pairs in producers.items():
            assert len(pairs) == 1
            i, j = pairs[0]
            assert j == i + 1

    def test_adjacent_pair_syndromes_helper(self):
        mapping = adjacent_pair_syndromes(CODE)
        assert len(mapping) == 40
        for syndrome, (i, j) in mapping.items():
            assert j == i + 1
            assert DAEC_41_32_COLUMNS[i] ^ DAEC_41_32_COLUMNS[j] == syndrome

    def test_secded_heuristic_mapping_collapses(self):
        # On a non-DAEC code the helper still answers, but pairs
        # collide — that is the ~31% classifier noise floor the
        # selector's hysteresis band is built around.
        secded = canonical_secded_39_32()
        assert len(adjacent_syndrome_set(secded)) < secded.n - 1


class TestRoundTrips:
    @given(message=messages)
    @settings(max_examples=100)
    def test_clean_word(self, message):
        result = CODE.decode(CODE.encode(message))
        assert result.status is DecodeStatus.OK
        assert result.message == message

    @given(message=messages, position=positions)
    @settings(max_examples=150)
    def test_single_bit_corrected(self, message, position):
        result = CODE.decode(flip(CODE.encode(message), position))
        assert result.status is DecodeStatus.CORRECTED
        assert result.message == message
        assert result.corrected_positions == (position,)

    @given(message=messages, start=adjacent_starts)
    @settings(max_examples=150)
    def test_adjacent_double_corrected(self, message, start):
        received = flip(CODE.encode(message), start, start + 1)
        result = CODE.decode(received)
        assert result.status is DecodeStatus.CORRECTED
        assert result.message == message
        assert result.corrected_positions == (start, start + 1)
        assert result.codeword == CODE.encode(message)

    @given(
        message=messages,
        pair=st.tuples(positions, positions).filter(
            lambda p: abs(p[0] - p[1]) > 1
        ),
    )
    @settings(max_examples=150)
    def test_non_adjacent_double_stays_due(self, message, pair):
        received = flip(CODE.encode(message), *pair)
        result = CODE.decode(received)
        assert result.status is DecodeStatus.DUE

    @given(
        message=messages,
        pair=st.tuples(positions, positions).filter(
            lambda p: abs(p[0] - p[1]) > 1
        ),
    )
    @settings(max_examples=50)
    def test_non_adjacent_due_recoverable_by_enumeration(self, message, pair):
        # The SWD-ECC path: the true codeword must be among the
        # equidistant candidates of the DUE word.
        enumerator = CandidateEnumerator(CODE)
        received = flip(CODE.encode(message), *pair)
        assert CODE.encode(message) in enumerator.candidates(received)
        assert message in enumerator.candidate_messages(received)
