"""Tests for the linear block code framework and syndrome decoding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.code import DecodeStatus, LinearBlockCode, systematic_pair
from repro.ecc.gf2 import GF2Matrix, from_rows, identity
from repro.ecc.hamming import hamming_code
from repro.errors import CodeConstructionError, DecodingError, EncodingError


@pytest.fixture(scope="module")
def hamming74():
    return hamming_code(3)  # (7, 4), d = 3


class TestConstructionValidation:
    def test_inconsistent_matrices_rejected(self):
        generator = identity(2).hstack(from_rows([[1, 1], [1, 0]]))
        bad_parity = identity(4)
        with pytest.raises(CodeConstructionError):
            LinearBlockCode(generator, bad_parity)

    def test_zero_column_rejected(self):
        # P with a zero row gives H a zero column.
        p = GF2Matrix([0b00, 0b11], 2)
        generator, parity = systematic_pair(p)
        with pytest.raises(CodeConstructionError):
            LinearBlockCode(generator, parity)

    def test_duplicate_columns_rejected_by_default(self):
        p = GF2Matrix([0b11, 0b11], 2)
        generator, parity = systematic_pair(p)
        with pytest.raises(CodeConstructionError):
            LinearBlockCode(generator, parity)

    def test_duplicate_columns_allowed_when_opted_in(self):
        p = GF2Matrix([0b11, 0b11], 2)
        generator, parity = systematic_pair(p)
        code = LinearBlockCode(
            generator, parity, allow_ambiguous_columns=True
        )
        # The duplicated columns must not be "corrected".
        received = code.encode(0b01) ^ 0b1000  # flip a duplicated-column bit
        assert code.decode(received).status is DecodeStatus.DUE

    def test_dimension_mismatch_rejected(self):
        generator = identity(3)
        parity = identity(3)
        with pytest.raises(CodeConstructionError):
            LinearBlockCode(generator, parity)


class TestEncodeDecode:
    def test_roundtrip_all_messages(self, hamming74):
        for message in range(16):
            codeword = hamming74.encode(message)
            result = hamming74.decode(codeword)
            assert result.status is DecodeStatus.OK
            assert result.message == message
            assert result.syndrome == 0

    def test_systematic_property(self, hamming74):
        for message in range(16):
            codeword = hamming74.encode(message)
            assert hamming74.extract_message(codeword) == message
            assert codeword >> hamming74.r == message

    def test_all_single_bit_errors_corrected(self, hamming74):
        for message in range(16):
            codeword = hamming74.encode(message)
            for position in range(hamming74.n):
                received = codeword ^ (1 << (hamming74.n - 1 - position))
                result = hamming74.decode(received)
                assert result.status is DecodeStatus.CORRECTED
                assert result.message == message
                assert result.corrected_positions == (position,)

    def test_encode_rejects_oversized_message(self, hamming74):
        with pytest.raises(EncodingError):
            hamming74.encode(1 << 4)

    def test_decode_rejects_oversized_word(self, hamming74):
        with pytest.raises(DecodingError):
            hamming74.decode(1 << 7)

    def test_decode_result_flags(self, hamming74):
        ok = hamming74.decode(hamming74.encode(5))
        assert ok.is_clean and not ok.is_due

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=50)
    def test_roundtrip_property_39_32(self, message):
        from repro.ecc.matrices import canonical_secded_39_32

        code = canonical_secded_39_32()
        assert code.decode(code.encode(message)).message == message

    def test_linearity(self, hamming74):
        for a in range(16):
            for b in range(16):
                assert (
                    hamming74.encode(a) ^ hamming74.encode(b)
                    == hamming74.encode(a ^ b)
                )


class TestCodeAnalysis:
    def test_minimum_distance_hamming(self, hamming74):
        assert hamming74.minimum_distance() == 3

    def test_verify_minimum_distance_agrees(self, hamming74):
        assert hamming74.verify_minimum_distance(3)
        assert not hamming74.verify_minimum_distance(4)

    def test_weight_distribution_hamming74(self, hamming74):
        # The (7,4) Hamming code's weight enumerator is known exactly:
        # 1 + 7z^3 + 7z^4 + z^7.
        assert hamming74.weight_distribution() == {0: 1, 3: 7, 4: 7, 7: 1}

    def test_codeword_enumeration_refused_for_large_k(self):
        from repro.ecc.matrices import canonical_secded_39_32

        code = canonical_secded_39_32()
        with pytest.raises(DecodingError):
            list(code.codewords())

    def test_verify_minimum_distance_bad_input(self, hamming74):
        with pytest.raises(ValueError):
            hamming74.verify_minimum_distance(0)

    def test_is_codeword(self, hamming74):
        codeword = hamming74.encode(9)
        assert hamming74.is_codeword(codeword)
        assert not hamming74.is_codeword(codeword ^ 1)

    def test_repr_mentions_parameters(self, hamming74):
        assert "7" in repr(hamming74) and "4" in repr(hamming74)
