"""Robustness fuzzing: malformed inputs must raise library errors,
never crash with arbitrary exceptions, and stateful use of the memory
model must preserve its invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.ecc.code import DecodeStatus
from repro.ecc.matrices import canonical_secded_39_32
from repro.errors import ElfFormatError, MemoryFaultError, ReproError
from repro.memory.model import EccMemory
from repro.program.elf import read_elf, write_elf
from repro.program.image import ProgramImage


class TestElfFuzz:
    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=200)
    def test_random_bytes_never_crash_the_parser(self, data):
        try:
            read_elf(data)
        except ElfFormatError:
            pass  # the only acceptable failure mode

    @given(st.integers(0, 200), st.integers(0, 255))
    @settings(max_examples=200)
    def test_single_byte_corruptions_are_contained(self, offset, value):
        image = ProgramImage.from_words("fuzz", [1, 2, 3], base_address=0x400000)
        data = bytearray(write_elf(image))
        offset %= len(data)
        data[offset] = value
        try:
            parsed = read_elf(bytes(data))
        except ElfFormatError:
            return
        # If it still parses, the result must be structurally sane.
        assert len(parsed.words) >= 0
        assert parsed.base_address % 4 == 0

    @given(st.integers(0, 160))
    @settings(max_examples=100)
    def test_truncations_are_contained(self, keep):
        image = ProgramImage.from_words("fuzz", [7, 8], base_address=0x400000)
        data = write_elf(image)[: keep]
        try:
            read_elf(data)
        except ElfFormatError:
            pass


class TestAssemblerFuzz:
    @given(st.text(max_size=120))
    @settings(max_examples=200)
    def test_garbage_source_never_crashes(self, source):
        from repro.errors import AssemblerError
        from repro.isa.assembler import assemble

        try:
            assemble(source)
        except (AssemblerError, ReproError):
            pass


class TestCompilerFuzz:
    @given(st.text(max_size=120))
    @settings(max_examples=150)
    def test_garbage_minilang_never_crashes(self, source):
        from repro.program.compiler import CompileError, compile_source

        try:
            compile_source(source)
        except CompileError:
            pass


class EccMemoryMachine(RuleBasedStateMachine):
    """Stateful model check: the memory behaves like a dict of words,
    with ECC transparently correcting the single-bit faults we inject."""

    def __init__(self):
        super().__init__()
        self.code = canonical_secded_39_32()
        self.memory = EccMemory(self.code)
        self.shadow: dict[int, int] = {}
        self.faulted: set[int] = set()

    addresses = st.integers(0, 63).map(lambda index: 0x1000 + 4 * index)
    words = st.integers(0, 0xFFFFFFFF)

    @rule(address=addresses, word=words)
    def write(self, address, word):
        self.memory.write(address, word)
        self.shadow[address] = word
        self.faulted.discard(address)

    @rule(address=addresses, position=st.integers(0, 38))
    def inject_single_bit(self, address, position):
        if address not in self.shadow:
            return
        if address in self.faulted:
            return  # keep at most one latent flip per word
        from repro.ecc.channel import pattern_from_positions

        self.memory.corrupt(
            address, pattern_from_positions((position,), self.code.n)
        )
        self.faulted.add(address)

    @rule(address=addresses)
    def read(self, address):
        if address not in self.shadow:
            with pytest.raises(MemoryFaultError):
                self.memory.read(address)
            return
        result = self.memory.read(address)
        assert result.word == self.shadow[address]
        if address in self.faulted:
            assert result.status in (
                DecodeStatus.CORRECTED, DecodeStatus.OK
            )
            self.faulted.discard(address)  # read scrubs in line
        else:
            assert result.status is DecodeStatus.OK

    @invariant()
    def mapped_addresses_match_shadow(self):
        assert set(self.memory.addresses()) == set(self.shadow)


TestEccMemoryStateful = EccMemoryMachine.TestCase
