"""End-to-end integration tests across the whole stack.

These exercise the full pipelines a user of the library would run:
ELF -> ECC memory -> fault injection -> recovery -> execution, and the
statistical claims of the paper at reduced scale.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    RecoveryContext,
    RecoveryPipeline,
    SwdEcc,
)
from repro.core.swdecc import success_probability
from repro.ecc import canonical_secded_39_32, double_bit_patterns
from repro.memory import (
    CleanPageStore,
    EccMemory,
    FaultInjector,
    HeuristicPolicy,
    memory_checkpointer,
)
from repro.program import (
    FrequencyTable,
    compile_source,
    read_elf,
    synthesize_benchmark,
    write_elf,
)
from repro.sim import Cpu, EccBackedMemory, ForkedExecution, JoinRule

BASE = 0x400000


class TestElfToRecoveryPipeline:
    """The paper's offline pipeline, end to end."""

    def test_full_offline_analysis_roundtrip(self, code):
        # 1. "Compile" a benchmark and ship it as a real ELF binary.
        image = synthesize_benchmark("mcf", length=256)
        binary = write_elf(image)
        # 2. "readelf": extract .text and compute program statistics.
        loaded = read_elf(binary, name="mcf")
        table = FrequencyTable.from_image(loaded)
        # 3. Encode an instruction, corrupt it with a 2-bit pattern,
        #    and recover with filter+rank.
        engine = SwdEcc(code, rng=random.Random(0))
        context = RecoveryContext.for_instructions(table)
        recovered = 0
        total = 0
        for index in range(40, 60):
            original = loaded.words[index]
            codeword = code.encode(original)
            for pattern in double_bit_patterns(code.n)[:40]:
                result = engine.recover(pattern.apply(codeword), context)
                recovered += success_probability(result, original)
                total += 1
        # Fig. 8's qualitative claim at small scale: far better than
        # the 1/12 random baseline.
        assert recovered / total > 0.15


class TestExecutionThroughEccMemory:
    def test_program_runs_through_ecc_protected_memory(self, code):
        program = compile_source(
            """
            fn main() {
                let x = 6;
                let y = 7;
                return x * y;
            }
            """,
            base_address=BASE,
        )
        memory = EccMemory(code)
        memory.load_image(program.words, BASE)
        cpu = Cpu(
            EccBackedMemory(memory),
            entry_pc=BASE,
            text_range=(BASE, BASE + 4 * len(program.words)),
        )
        result = cpu.run()
        assert result.exit_code == 42
        assert memory.stats.reads > 0

    def test_single_bit_fault_is_transparent_to_execution(self, code):
        program = compile_source(
            "fn main() { return 5 + 4; }", base_address=BASE
        )
        memory = EccMemory(code)
        memory.load_image(program.words, BASE)
        injector = FaultInjector(memory, rng=random.Random(1))
        for index in range(len(program.words)):
            injector.inject_at(BASE + 4 * index, [index % 39])
        cpu = Cpu(
            EccBackedMemory(memory),
            entry_pc=BASE,
            text_range=(BASE, BASE + 4 * len(program.words)),
        )
        result = cpu.run()
        assert result.exit_code == 9
        assert memory.stats.corrected_errors > 0

    def test_due_heuristically_recovered_then_executed(self, code):
        """The headline scenario of Fig. 1: a DUE in instruction memory
        is heuristically recovered and the program keeps running."""
        program = compile_source(
            """
            fn main() {
                let total = 0;
                let i = 0;
                while (i < 10) { total = total + 3; i = i + 1; }
                return total;
            }
            """,
            base_address=BASE,
        )
        words = list(program.words)
        table = FrequencyTable.from_counts(
            "program", {"addu": 10, "addiu": 20, "lw": 30, "sw": 15, "beq": 5}
        )
        context = RecoveryContext.for_instructions(table)
        pipeline = RecoveryPipeline(SwdEcc(code, rng=random.Random(7)))
        memory = EccMemory(code, HeuristicPolicy(pipeline, lambda a: context))
        memory.load_image(words, BASE)

        # Corrupt one mid-program instruction with a decode-field error.
        victim = 20
        FaultInjector(memory).inject_at(BASE + 4 * victim, [0, 27])
        cpu = Cpu(
            EccBackedMemory(memory),
            entry_pc=BASE,
            text_range=(BASE, BASE + 4 * len(words)),
        )
        result = cpu.run()
        assert memory.stats.heuristic_recoveries == 1
        # Whether or not the guess was perfect, the system made forward
        # progress instead of crashing with UncorrectableError.
        assert result.steps > 0

    def test_clean_page_reload_gives_exact_execution(self, code):
        program = compile_source(
            "fn main() { return 123; }", base_address=BASE
        )
        pages = CleanPageStore()
        pages.register_region(BASE, program.words)
        pipeline = RecoveryPipeline(
            SwdEcc(code, rng=random.Random(0)), page_source=pages
        )
        memory = EccMemory(code, HeuristicPolicy(pipeline))
        memory.load_image(program.words, BASE)
        FaultInjector(memory).inject_at(BASE + 4 * 3, [4, 14])
        cpu = Cpu(
            EccBackedMemory(memory),
            entry_pc=BASE,
            text_range=(BASE, BASE + 4 * len(program.words)),
        )
        assert cpu.run().exit_code == 123


class TestCheckpointRollbackFlow:
    def test_rollback_then_clean_reread(self, code):
        memory = EccMemory(code)
        memory.write(0x1000, 0xAAAAAAAA)
        checkpoints = memory_checkpointer(memory)
        checkpoints.checkpoint()
        # Corrupt after the checkpoint; rollback must undo it.
        FaultInjector(memory).inject_at(0x1000, [0, 1])
        pipeline = RecoveryPipeline(
            SwdEcc(code, rng=random.Random(0)), checkpoint_source=checkpoints
        )
        memory2 = EccMemory(code, HeuristicPolicy(pipeline))
        # Wire the pipeline's rollback to the first memory's state by
        # reading through the policy of memory (shared checkpoints).
        outcome = pipeline.handle_due(
            0x1000, memory.raw_codeword(0x1000), RecoveryContext()
        )
        assert outcome.action.value == "rollback"
        assert memory.read(0x1000).word == 0xAAAAAAAA


class TestForkIntegration:
    def test_swdecc_plus_fork_recovers_or_forfeits_safely(self, code):
        program = compile_source(
            """
            fn main() {
                let acc = 1;
                let i = 0;
                while (i < 8) { acc = acc * 2; i = i + 1; }
                print(acc);
                return acc;
            }
            """,
            base_address=BASE,
        )
        # Pick the multiply's mflo as the victim.
        from repro.isa.decoder import try_decode

        victim = next(
            i for i, w in enumerate(program.words)
            if try_decode(w) and try_decode(w).mnemonic == "mult"
        )
        original = program.words[victim]
        engine = SwdEcc(code, rng=random.Random(0))
        received = code.encode(original) ^ (1 << 38) ^ (1 << 35)
        result = engine.recover(received)
        fork = ForkedExecution(program.words, BASE, victim, max_steps=50_000)
        verdict = fork.run(list(result.valid_messages))
        if verdict.rule in (JoinRule.SOLE_SURVIVOR, JoinRule.CONVERGED):
            chosen = next(
                o for o in verdict.outcomes if o.candidate == verdict.chosen
            )
            truth = fork.run_fork(original)
            assert chosen.result.output == truth.result.output
        else:
            assert verdict.chosen is None


class TestCrashPropagation:
    def test_machine_check_propagates_through_cpu(self, code):
        """Under the crash policy a DUE fetch must raise, not be
        misreported as an unmapped-memory symptom."""
        from repro.errors import UncorrectableError

        program = compile_source("fn main() { return 1; }", base_address=BASE)
        memory = EccMemory(code)  # default CrashPolicy
        memory.load_image(program.words, BASE)
        FaultInjector(memory).inject_at(BASE, [0, 1])
        cpu = Cpu(
            EccBackedMemory(memory),
            entry_pc=BASE,
            text_range=(BASE, BASE + 4 * len(program.words)),
        )
        with pytest.raises(UncorrectableError):
            cpu.run()
