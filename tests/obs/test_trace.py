"""Unit tests for tracing spans: nesting, timing monotonicity, no-op mode."""

from __future__ import annotations

import pytest

from repro.obs.trace import (
    SpanCollector,
    current_collector,
    disable_tracing,
    enable_tracing,
    span,
    tracing_enabled,
)


@pytest.fixture
def collector():
    """Tracing enabled for the test, always disabled afterwards."""
    active = enable_tracing()
    yield active
    disable_tracing()


class TestSpanLifecycle:
    def test_disabled_by_default_and_null_span_is_noop(self):
        assert not tracing_enabled()
        with span("anything"):
            pass  # must not raise, must not record anywhere
        assert current_collector() is None

    def test_enable_disable_roundtrip(self):
        active = enable_tracing()
        assert tracing_enabled() and current_collector() is active
        assert disable_tracing() is active
        assert not tracing_enabled()

    def test_span_records_name_and_duration(self, collector):
        with span("stage"):
            pass
        assert len(collector) == 1
        recorded = collector.spans[0]
        assert recorded.name == "stage"
        assert recorded.duration_ns >= 0
        assert recorded.end_ns >= recorded.start_ns

    def test_timing_monotonicity_across_spans(self, collector):
        with span("first"):
            pass
        with span("second"):
            pass
        first, second = collector.spans
        assert second.start_ns >= first.end_ns

    def test_span_survives_exceptions(self, collector):
        with pytest.raises(ValueError):
            with span("fails"):
                raise ValueError("boom")
        assert len(collector) == 1
        assert collector.spans[0].name == "fails"


class TestNesting:
    def test_child_closes_before_parent_and_links_to_it(self, collector):
        with span("parent"):
            with span("child"):
                pass
        child, parent = collector.spans  # completion order
        assert child.name == "child" and parent.name == "parent"
        assert child.depth == 1 and parent.depth == 0
        assert child.parent_id == parent.span_id
        assert parent.parent_id is None
        # The child's interval nests inside the parent's.
        assert parent.start_ns <= child.start_ns
        assert child.end_ns <= parent.end_ns

    def test_sibling_spans_share_parent(self, collector):
        with span("parent"):
            with span("a"):
                pass
            with span("b"):
                pass
        a, b, parent = collector.spans
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id
        assert a.span_id != b.span_id

    def test_deep_nesting_depths(self, collector):
        with span("d0"):
            with span("d1"):
                with span("d2"):
                    pass
        depths = {item.name: item.depth for item in collector.spans}
        assert depths == {"d0": 0, "d1": 1, "d2": 2}


class TestSummary:
    def test_summary_aggregates_per_name(self):
        collector = SpanCollector()
        enable_tracing(collector)
        try:
            for _ in range(3):
                with span("repeated"):
                    pass
            with span("once"):
                pass
        finally:
            disable_tracing()
        summary = collector.summary()
        assert summary["repeated"]["count"] == 3
        assert summary["once"]["count"] == 1
        entry = summary["repeated"]
        assert entry["min_ns"] <= entry["mean_ns"] <= entry["max_ns"]
        assert entry["total_ns"] == pytest.approx(
            entry["mean_ns"] * entry["count"]
        )

    def test_clear(self, collector):
        with span("x"):
            pass
        collector.clear()
        assert len(collector) == 0
        assert collector.summary() == {}
