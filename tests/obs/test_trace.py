"""Unit tests for tracing spans: nesting, timing monotonicity, no-op mode,
traceparent propagation, bounded retention, and slow-trace staging."""

from __future__ import annotations

import pytest

from repro.obs.trace import (
    Span,
    SpanCollector,
    TraceBuffer,
    TraceContext,
    TraceEntry,
    current_collector,
    disable_tracing,
    enable_tracing,
    format_span_id,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    span,
    spans_to_forest,
    tracing_enabled,
)


@pytest.fixture
def collector():
    """Tracing enabled for the test, always disabled afterwards."""
    active = enable_tracing()
    yield active
    disable_tracing()


class TestSpanLifecycle:
    def test_disabled_by_default_and_null_span_is_noop(self):
        assert not tracing_enabled()
        with span("anything"):
            pass  # must not raise, must not record anywhere
        assert current_collector() is None

    def test_enable_disable_roundtrip(self):
        active = enable_tracing()
        assert tracing_enabled() and current_collector() is active
        assert disable_tracing() is active
        assert not tracing_enabled()

    def test_span_records_name_and_duration(self, collector):
        with span("stage"):
            pass
        assert len(collector) == 1
        recorded = collector.spans[0]
        assert recorded.name == "stage"
        assert recorded.duration_ns >= 0
        assert recorded.end_ns >= recorded.start_ns

    def test_timing_monotonicity_across_spans(self, collector):
        with span("first"):
            pass
        with span("second"):
            pass
        first, second = collector.spans
        assert second.start_ns >= first.end_ns

    def test_span_survives_exceptions(self, collector):
        with pytest.raises(ValueError):
            with span("fails"):
                raise ValueError("boom")
        assert len(collector) == 1
        assert collector.spans[0].name == "fails"


class TestNesting:
    def test_child_closes_before_parent_and_links_to_it(self, collector):
        with span("parent"):
            with span("child"):
                pass
        child, parent = collector.spans  # completion order
        assert child.name == "child" and parent.name == "parent"
        assert child.depth == 1 and parent.depth == 0
        assert child.parent_id == parent.span_id
        assert parent.parent_id is None
        # The child's interval nests inside the parent's.
        assert parent.start_ns <= child.start_ns
        assert child.end_ns <= parent.end_ns

    def test_sibling_spans_share_parent(self, collector):
        with span("parent"):
            with span("a"):
                pass
            with span("b"):
                pass
        a, b, parent = collector.spans
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id
        assert a.span_id != b.span_id

    def test_deep_nesting_depths(self, collector):
        with span("d0"):
            with span("d1"):
                with span("d2"):
                    pass
        depths = {item.name: item.depth for item in collector.spans}
        assert depths == {"d0": 0, "d1": 1, "d2": 2}


class TestSummary:
    def test_summary_aggregates_per_name(self):
        collector = SpanCollector()
        enable_tracing(collector)
        try:
            for _ in range(3):
                with span("repeated"):
                    pass
            with span("once"):
                pass
        finally:
            disable_tracing()
        summary = collector.summary()
        assert summary["repeated"]["count"] == 3
        assert summary["once"]["count"] == 1
        entry = summary["repeated"]
        assert entry["min_ns"] <= entry["mean_ns"] <= entry["max_ns"]
        assert entry["total_ns"] == pytest.approx(
            entry["mean_ns"] * entry["count"]
        )

    def test_clear(self, collector):
        with span("x"):
            pass
        collector.clear()
        assert len(collector) == 0
        assert collector.summary() == {}


_TRACE_ID = "ab" * 16
_SPAN_HEX = "cd" * 8


class TestTraceparent:
    def test_roundtrip(self):
        context = TraceContext.new()
        assert parse_traceparent(context.to_traceparent()) == context

    def test_unsampled_roundtrip(self):
        context = TraceContext.new(sampled=False)
        header = context.to_traceparent()
        assert header.endswith("-00")
        assert parse_traceparent(header) == context

    def test_parse_fields(self):
        context = parse_traceparent(f"00-{_TRACE_ID}-{_SPAN_HEX}-01")
        assert context == TraceContext(_TRACE_ID, int(_SPAN_HEX, 16), True)

    def test_flags_other_bits_ignored_for_sampling(self):
        context = parse_traceparent(f"00-{_TRACE_ID}-{_SPAN_HEX}-fe")
        assert context is not None and not context.sampled

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        f"00-{_TRACE_ID}-{_SPAN_HEX}",            # missing flags
        f"0-{_TRACE_ID}-{_SPAN_HEX}-01",          # short version
        f"ff-{_TRACE_ID}-{_SPAN_HEX}-01",         # forbidden version
        f"00-{_TRACE_ID[:-2]}-{_SPAN_HEX}-01",    # short trace id
        f"00-{_TRACE_ID}-{_SPAN_HEX[:-2]}-01",    # short span id
        f"00-{'0' * 32}-{_SPAN_HEX}-01",          # all-zero trace id
        f"00-{_TRACE_ID}-{'0' * 16}-01",          # all-zero span id
        f"00-{_TRACE_ID.upper()}-{_SPAN_HEX}-01",  # uppercase hex
        f"00-{_TRACE_ID}-{_SPAN_HEX}-01-extra",   # v00 has 4 fields
        f"00-{'zz' * 16}-{_SPAN_HEX}-01",         # non-hex trace id
        f"00-{_TRACE_ID}-{_SPAN_HEX}-xx",         # non-hex flags
    ])
    def test_malformed_headers_parse_to_none(self, header):
        assert parse_traceparent(header) is None

    def test_future_version_tolerates_extra_fields(self):
        context = parse_traceparent(
            f"01-{_TRACE_ID}-{_SPAN_HEX}-01-future-stuff"
        )
        assert context is not None
        assert context.trace_id == _TRACE_ID

    def test_child_keeps_trace_and_sampling(self):
        parent = TraceContext(_TRACE_ID, 7, sampled=False)
        child = parent.child(11)
        assert child == TraceContext(_TRACE_ID, 11, False)

    def test_random_ids_are_well_formed(self):
        assert len(new_trace_id()) == 32
        assert new_trace_id() != new_trace_id()
        span_id = new_span_id()
        assert 0 < span_id < (1 << 63)
        assert len(format_span_id(span_id)) == 16
        assert int(format_span_id(span_id), 16) == span_id


def _make_span(
    name: str,
    start_ns: int,
    end_ns: int,
    span_id: int,
    parent_id: int | None = None,
    trace_id: str | None = None,
    depth: int = 0,
) -> Span:
    return Span(name=name, start_ns=start_ns, end_ns=end_ns, depth=depth,
                span_id=span_id, parent_id=parent_id, trace_id=trace_id)


class TestBoundedRetention:
    def test_raw_spans_capped_but_summary_stays_exact(self):
        collector = SpanCollector(max_spans=8)
        enable_tracing(collector)
        try:
            for _ in range(20):
                with span("hot"):
                    pass
        finally:
            disable_tracing()
        assert len(collector) == 8
        assert len(collector.spans) == 8
        assert collector.dropped == 12
        entry = collector.summary()["hot"]
        assert entry["count"] == 20  # exact despite eviction
        assert entry["total_ns"] >= entry["max_ns"]

    def test_clear_resets_drop_accounting(self):
        collector = SpanCollector(max_spans=2)
        for index in range(5):
            collector.record(_make_span("s", 0, 1, span_id=index))
        collector.clear()
        assert collector.dropped == 0
        for index in range(3):
            collector.record(_make_span("s", 0, 1, span_id=index))
        assert collector.dropped == 1

    def test_bad_max_spans_rejected(self):
        with pytest.raises(ValueError, match="max_spans"):
            SpanCollector(max_spans=0)


class TestSpansToForest:
    def test_nests_children_and_formats_ids(self):
        spans = [
            _make_span("child", 10, 50, span_id=2, parent_id=1,
                       trace_id=_TRACE_ID, depth=1),
            _make_span("root", 0, 100, span_id=1, trace_id=_TRACE_ID),
        ]
        forest = spans_to_forest(spans)
        assert len(forest) == 1
        root = forest[0]
        assert root["name"] == "root"
        assert root["span_id"] == format_span_id(1)
        assert root["parent_id"] is None
        assert [c["name"] for c in root["children"]] == ["child"]
        assert root["children"][0]["parent_id"] == format_span_id(1)
        assert root["children"][0]["duration_ns"] == 40

    def test_missing_parent_becomes_root(self):
        forest = spans_to_forest(
            [_make_span("dangling", 5, 9, span_id=3, parent_id=999)]
        )
        assert len(forest) == 1
        assert forest[0]["parent_id"] is None

    def test_roots_and_children_sorted_by_start(self):
        spans = [
            _make_span("late-root", 50, 60, span_id=4),
            _make_span("early-root", 0, 40, span_id=1),
            _make_span("b", 30, 35, span_id=3, parent_id=1),
            _make_span("a", 10, 20, span_id=2, parent_id=1),
        ]
        forest = spans_to_forest(spans)
        assert [n["name"] for n in forest] == ["early-root", "late-root"]
        assert [c["name"] for c in forest[0]["children"]] == ["a", "b"]


def _trace_entry(trace_id: str, duration_ns: int) -> TraceEntry:
    return TraceEntry(
        trace_id=trace_id, root_span_id=1, remote_parent_id=None,
        duration_ns=duration_ns,
        spans=(_make_span("service.request", 0, duration_ns, span_id=1,
                          trace_id=trace_id),),
    )


class TestTraceBuffer:
    def test_evicts_fastest_when_full(self):
        buffer = TraceBuffer(capacity=3)
        for index, duration in enumerate([50, 10, 30, 40]):
            buffer.add(_trace_entry(f"t{index}", duration))
        assert len(buffer) == 3
        retained = [e.duration_ns for e in buffer.slowest()]
        assert retained == [50, 40, 30]  # t1 (fastest) evicted
        assert buffer.get("t1") is None
        assert buffer.get("t0") is not None

    def test_slowest_limit(self):
        buffer = TraceBuffer(capacity=8)
        for index in range(5):
            buffer.add(_trace_entry(f"t{index}", index * 100))
        top = buffer.slowest(2)
        assert [e.trace_id for e in top] == ["t4", "t3"]

    def test_clear_and_bad_capacity(self):
        buffer = TraceBuffer(capacity=2)
        buffer.add(_trace_entry("t", 1))
        buffer.clear()
        assert len(buffer) == 0
        with pytest.raises(ValueError, match="capacity"):
            TraceBuffer(capacity=0)


class TestTraceStaging:
    def test_begin_record_finish_builds_entry(self):
        collector = SpanCollector()
        collector.begin_trace(_TRACE_ID)
        collector.record(_make_span("service.stage.queue_wait", 10, 20,
                                    span_id=2, parent_id=1,
                                    trace_id=_TRACE_ID, depth=1))
        collector.record(_make_span("service.request", 0, 100, span_id=1,
                                    trace_id=_TRACE_ID))
        entry = collector.finish_trace(
            _TRACE_ID, root_span_id=1, remote_parent_id=0xCD
        )
        assert entry is not None
        assert entry.duration_ns == 100  # the root span's duration
        assert collector.traces.get(_TRACE_ID) is entry
        tree = entry.as_dict()
        assert tree["remote_parent_id"] == format_span_id(0xCD)
        assert tree["span_count"] == 2
        assert tree["root"]["name"] == "service.request"
        children = tree["root"]["children"]
        assert [c["name"] for c in children] == ["service.stage.queue_wait"]

    def test_finish_without_begin_returns_none(self):
        collector = SpanCollector()
        assert collector.finish_trace("un" * 16, root_span_id=1) is None
        assert len(collector.traces) == 0

    def test_orphans_adopted_under_root(self):
        collector = SpanCollector()
        collector.begin_trace(_TRACE_ID)
        collector.record(_make_span("service.request", 0, 100, span_id=1,
                                    trace_id=_TRACE_ID))
        collector.record(_make_span("stray", 40, 60, span_id=5,
                                    parent_id=999, trace_id=_TRACE_ID))
        entry = collector.finish_trace(_TRACE_ID, root_span_id=1)
        tree = entry.as_dict()
        stray = next(
            c for c in tree["root"]["children"] if c["name"] == "stray"
        )
        assert stray["parent_id"] == format_span_id(1)

    def test_untraced_spans_stay_out_of_staging(self):
        collector = SpanCollector()
        collector.begin_trace(_TRACE_ID)
        collector.record(_make_span("plain", 0, 1, span_id=9))
        collector.record(_make_span("service.request", 0, 100, span_id=1,
                                    trace_id=_TRACE_ID))
        entry = collector.finish_trace(_TRACE_ID, root_span_id=1)
        assert [s.name for s in entry.spans] == ["service.request"]

    def test_spans_for_unstaged_trace_still_recorded(self):
        collector = SpanCollector()
        collector.record(_make_span("service.request", 0, 1, span_id=1,
                                    trace_id="fe" * 16))
        assert len(collector) == 1
        assert collector.finish_trace("fe" * 16, root_span_id=1) is None

    def test_staging_pressure_sheds_oldest_slot(self):
        from repro.obs.trace import _MAX_STAGED_TRACES

        collector = SpanCollector()
        collector.begin_trace("old" + "0" * 29)
        for index in range(_MAX_STAGED_TRACES):
            collector.begin_trace(f"{index:032x}")
        # The oldest slot was shed; finishing it yields nothing.
        assert collector.finish_trace(
            "old" + "0" * 29, root_span_id=1
        ) is None
