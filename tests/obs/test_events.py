"""Unit tests for DUE event records and the bounded event log."""

from __future__ import annotations

import json

from repro.obs.events import DueEvent, EventLog
from repro.obs.export import to_json, to_jsonable


def _event(**overrides) -> DueEvent:
    fields = dict(
        received=0x1234,
        num_candidates=12,
        num_valid=3,
        filter_fell_back=False,
        chosen_message=0x8FBF0018,
        chosen_codeword=0x11_8FBF0018,
        tied=1,
        latency_ns=42_000,
    )
    fields.update(overrides)
    return DueEvent(**fields)


class TestDueEvent:
    def test_round_trips_through_json(self):
        event = _event(address=0x400000, true_message=0x8FBF0018)
        rebuilt = DueEvent.from_dict(json.loads(json.dumps(event.to_dict())))
        assert rebuilt == event

    def test_round_trip_preserves_optional_none(self):
        event = _event()
        rebuilt = DueEvent.from_dict(json.loads(json.dumps(event.to_dict())))
        assert rebuilt == event
        assert rebuilt.address is None and rebuilt.true_message is None

    def test_recovered_verdict(self):
        assert _event().recovered is None
        assert _event(true_message=0x8FBF0018).recovered is True
        assert _event(true_message=0xDEAD).recovered is False

    def test_with_truth_and_address_are_copies(self):
        event = _event()
        annotated = event.with_truth(0x8FBF0018).with_address(0x100)
        assert annotated.recovered is True
        assert annotated.address == 0x100
        assert event.true_message is None  # original untouched

    def test_to_jsonable_passthrough(self):
        payload = to_jsonable(_event())
        assert payload["received"] == 0x1234
        assert json.loads(to_json(_event()))["num_candidates"] == 12


class TestEventLog:
    def test_record_and_read(self):
        log = EventLog()
        log.record(_event())
        assert len(log) == 1
        assert log.last() == _event()
        assert log.events() == (_event(),)

    def test_bounded_capacity_evicts_oldest(self):
        log = EventLog(capacity=3)
        for received in range(5):
            log.record(_event(received=received))
        assert len(log) == 3
        assert [e.received for e in log.events()] == [2, 3, 4]
        assert log.total_recorded == 5

    def test_annotate_last(self):
        log = EventLog()
        log.record(_event())
        updated = log.annotate_last(true_message=0x8FBF0018, address=0x40)
        assert updated is not None and updated.recovered is True
        assert log.last().address == 0x40

    def test_annotate_last_on_empty_log(self):
        assert EventLog().annotate_last(address=1) is None

    def test_drain_empties_but_keeps_total(self):
        log = EventLog()
        log.record(_event())
        drained = log.drain()
        assert drained == (_event(),)
        assert len(log) == 0
        assert log.total_recorded == 1

    def test_json_lines_round_trip(self):
        log = EventLog()
        log.record(_event(received=1))
        log.record(_event(received=2, true_message=0x8FBF0018))
        rebuilt = EventLog.from_json_lines(log.to_json_lines())
        assert rebuilt.events() == log.events()

    def test_empty_json_lines(self):
        assert EventLog().to_json_lines() == ""
        assert EventLog.from_json_lines("").events() == ()
