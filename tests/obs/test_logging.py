"""Tests for structured JSON logging: formatter, binding, configure."""

from __future__ import annotations

import io
import json
import logging

from repro.obs import logging as obs_logging


def _capture(level: int = logging.DEBUG):
    """Configure a stream handler and return (stream, handler)."""
    stream = io.StringIO()
    handler = obs_logging.configure(stream, level=level)
    return stream, handler


def _lines(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestEmit:
    def test_line_shape(self):
        stream, handler = _capture()
        try:
            log = obs_logging.get_logger("swdecc")
            obs_logging.emit(log, logging.INFO, "filter fell back",
                             received="0x1f", candidates=3)
        finally:
            obs_logging.unconfigure(handler)
        (line,) = _lines(stream)
        assert line["level"] == "info"
        assert line["logger"] == "repro.swdecc"
        assert line["msg"] == "filter fell back"
        assert line["received"] == "0x1f"
        assert line["candidates"] == 3
        assert isinstance(line["ts"], float)

    def test_silent_without_configure(self, capsys):
        log = obs_logging.get_logger("swdecc")
        obs_logging.emit(log, logging.WARNING, "nobody listens", key=1)
        captured = capsys.readouterr()
        assert captured.err == ""
        assert captured.out == ""

    def test_level_filtering(self):
        stream, handler = _capture(level=logging.INFO)
        try:
            log = obs_logging.get_logger("swdecc")
            obs_logging.emit(log, logging.DEBUG, "too quiet")
            obs_logging.emit(log, logging.INFO, "loud enough")
        finally:
            obs_logging.unconfigure(handler)
        assert [line["msg"] for line in _lines(stream)] == ["loud enough"]

    def test_non_json_fields_stringified(self):
        stream, handler = _capture()
        try:
            log = obs_logging.get_logger("swdecc")
            obs_logging.emit(log, logging.INFO, "odd", what={1, 2})
        finally:
            obs_logging.unconfigure(handler)
        (line,) = _lines(stream)
        assert isinstance(line["what"], str)


class TestBind:
    def test_bound_fields_appear_on_lines(self):
        stream, handler = _capture()
        try:
            log = obs_logging.get_logger("analysis.sweep")
            with obs_logging.bind(benchmark="mcf", strategy="filter-and-rank"):
                obs_logging.emit(log, logging.INFO, "chunk", chunk=0)
        finally:
            obs_logging.unconfigure(handler)
        (line,) = _lines(stream)
        assert line["benchmark"] == "mcf"
        assert line["strategy"] == "filter-and-rank"
        assert line["chunk"] == 0

    def test_nesting_extends_and_restores(self):
        assert obs_logging.bound_fields() == {}
        with obs_logging.bind(a=1):
            with obs_logging.bind(b=2, a=3):
                assert obs_logging.bound_fields() == {"a": 3, "b": 2}
            assert obs_logging.bound_fields() == {"a": 1}
        assert obs_logging.bound_fields() == {}

    def test_event_fields_override_bound(self):
        stream, handler = _capture()
        try:
            log = obs_logging.get_logger("x")
            with obs_logging.bind(chunk="outer"):
                obs_logging.emit(log, logging.INFO, "m", chunk="inner")
        finally:
            obs_logging.unconfigure(handler)
        (line,) = _lines(stream)
        assert line["chunk"] == "inner"


class TestConfigure:
    def test_file_destination(self, tmp_path):
        path = tmp_path / "run.jsonl"
        handler = obs_logging.configure(str(path))
        try:
            obs_logging.emit(obs_logging.get_logger("x"), logging.INFO, "hi")
        finally:
            obs_logging.unconfigure(handler)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["msg"] == "hi"

    def test_dash_targets_stderr(self, capsys):
        handler = obs_logging.configure("-")
        try:
            obs_logging.emit(obs_logging.get_logger("x"), logging.INFO, "hey")
        finally:
            obs_logging.unconfigure(handler)
        err = capsys.readouterr().err
        assert json.loads(err.splitlines()[0])["msg"] == "hey"

    def test_unconfigure_detaches(self):
        stream = io.StringIO()
        handler = obs_logging.configure(stream)
        obs_logging.unconfigure(handler)
        obs_logging.emit(obs_logging.get_logger("x"), logging.INFO, "late")
        assert stream.getvalue() == ""

    def test_get_logger_roots_names(self):
        assert obs_logging.get_logger("swdecc").name == "repro.swdecc"
        assert obs_logging.get_logger("repro.swdecc").name == "repro.swdecc"
        assert obs_logging.get_logger("repro").name == "repro"

    def test_exception_info_rendered(self):
        stream, handler = _capture()
        try:
            log = obs_logging.get_logger("x")
            try:
                raise ValueError("boom")
            except ValueError:
                log.exception("it broke")
        finally:
            obs_logging.unconfigure(handler)
        (line,) = _lines(stream)
        assert line["exc_type"] == "ValueError"
        assert "boom" in line["exc"]
