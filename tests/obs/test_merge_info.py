"""Info metrics and cross-process snapshot merging."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.export import render_metrics
from repro.obs.metrics import (
    Info,
    MetricsRegistry,
    NullRegistry,
    merge_snapshot,
)


class TestInfo:
    def test_last_set_wins(self):
        info = Info("sweep.last_benchmark", help="benchmark identity")
        assert info.value == ""
        info.set("mcf")
        info.set("bzip2")
        assert info.value == "bzip2"

    def test_set_coerces_to_string(self):
        info = Info("test.info")
        info.set(42)
        assert info.value == "42"

    def test_reset_clears(self):
        info = Info("test.info")
        info.set("mcf")
        info.reset()
        assert info.value == ""

    def test_as_dict_round_trip(self):
        info = Info("test.info")
        info.set("mcf")
        assert info.as_dict() == {
            "type": "info", "name": "test.info", "value": "mcf",
        }

    def test_registry_get_or_create_and_reset(self):
        registry = MetricsRegistry()
        info = registry.info("sweep.last_benchmark")
        assert registry.info("sweep.last_benchmark") is info
        info.set("mcf")
        registry.reset()
        assert registry.info("sweep.last_benchmark").value == ""

    def test_name_collision_with_other_type_rejected(self):
        registry = MetricsRegistry()
        registry.counter("taken")
        with pytest.raises(ObservabilityError):
            registry.info("taken")

    def test_null_registry_discards_updates(self):
        info = NullRegistry().info("test.info")
        info.set("mcf")
        assert info.value == ""

    def test_render_metrics_shows_info_rows(self):
        registry = MetricsRegistry()
        registry.info("sweep.last_benchmark").set("mcf")
        text = render_metrics(registry)
        assert "sweep.last_benchmark" in text
        assert "mcf" in text


class TestMergeSnapshot:
    def test_counters_accumulate(self):
        source = MetricsRegistry()
        source.counter("swdecc.recoveries").inc(7)
        target = MetricsRegistry()
        target.counter("swdecc.recoveries").inc(3)
        merge_snapshot(source.as_dict(), target)
        merge_snapshot(source.as_dict(), target)
        assert target.counter("swdecc.recoveries").value == 17

    def test_gauges_and_info_take_last_merge(self):
        first = MetricsRegistry()
        first.gauge("sweep.last_wall_seconds").set(1.5)
        first.info("sweep.last_benchmark").set("mcf")
        second = MetricsRegistry()
        second.gauge("sweep.last_wall_seconds").set(0.25)
        second.info("sweep.last_benchmark").set("bzip2")
        target = MetricsRegistry()
        merge_snapshot(first.as_dict(), target)
        merge_snapshot(second.as_dict(), target)
        assert target.gauge("sweep.last_wall_seconds").value == 0.25
        assert target.info("sweep.last_benchmark").value == "bzip2"

    def test_histograms_merge_exactly(self):
        bounds = (1.0, 10.0)
        source = MetricsRegistry()
        histogram = source.histogram("latency", buckets=bounds)
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        target = MetricsRegistry()
        target.histogram("latency", buckets=bounds).observe(2.0)
        merge_snapshot(source.as_dict(), target)
        merged = target.histogram("latency", buckets=bounds)
        assert merged.count == 4
        assert merged.sum == pytest.approx(57.5)
        assert merged.min == 0.5
        assert merged.max == 50.0

    def test_histogram_bucket_mismatch_rejected(self):
        source = MetricsRegistry()
        source.histogram("latency", buckets=(1.0, 2.0)).observe(1.0)
        target = MetricsRegistry()
        target.histogram("latency", buckets=(5.0, 6.0))
        with pytest.raises(ObservabilityError):
            merge_snapshot(source.as_dict(), target)

    def test_unknown_metric_type_rejected(self):
        snapshot = {"weird": {"type": "summary", "name": "weird"}}
        with pytest.raises(ObservabilityError):
            merge_snapshot(snapshot, MetricsRegistry())

    def test_merge_creates_missing_metrics(self):
        source = MetricsRegistry()
        source.counter("only.in.worker").inc(2)
        source.info("worker.note").set("hello")
        target = MetricsRegistry()
        merge_snapshot(source.as_dict(), target)
        assert target.counter("only.in.worker").value == 2
        assert target.info("worker.note").value == "hello"
