"""Energy/cost accounting: the model, derived gauges, and exposition.

The op counters themselves are advanced by the ecc/core hot paths (see
``tests/core/test_ops_additivity.py``); here we pin down the layer
above: :class:`~repro.obs.energy.EnergyModel` arithmetic and
validation, the snapshot-time collector that derives
``energy.joules_per_recovery`` and friends, and the strict promtext
round-trip of those derived families.
"""

from __future__ import annotations

import random

import pytest

from repro.core.swdecc import SwdEcc
from repro.ecc import canonical_secded_39_32
from repro.errors import ObservabilityError
from repro.obs import energy as obs_energy
from repro.obs import metrics as obs_metrics
from repro.obs import promtext
from repro.obs.energy import (
    DEFAULT_JOULES_PER_OP,
    ENV_CARBON,
    ENV_DOLLARS,
    EnergyModel,
    get_energy_model,
    op_counts,
    set_energy_model,
)


@pytest.fixture()
def fresh_registry():
    """Swap in an empty process registry for the duration of a test.

    The energy collector reads and writes the *current* process
    registry at snapshot time, so a swapped registry fully isolates
    these tests from counters accumulated by the rest of the suite.
    """
    registry = obs_metrics.MetricsRegistry()
    previous = obs_metrics.set_registry(registry)
    try:
        yield registry
    finally:
        obs_metrics.set_registry(previous)


class TestEnergyModel:
    def test_default_constants_are_positive(self):
        model = EnergyModel()
        assert model.joules_per_op == DEFAULT_JOULES_PER_OP
        assert all(j > 0 for j in model.joules_per_op.values())

    def test_negative_constant_rejected(self):
        with pytest.raises(ObservabilityError):
            EnergyModel(joules_per_op={"ops.xor": -1.0})

    def test_negative_carbon_and_dollars_rejected(self):
        with pytest.raises(ObservabilityError):
            EnergyModel(carbon_intensity_g_per_kwh=-1.0)
        with pytest.raises(ObservabilityError):
            EnergyModel(dollars_per_kwh=-0.01)

    def test_joules_is_dot_product(self):
        model = EnergyModel()
        counts = {"ops.xor": 1000, "ops.syndrome_computes": 10}
        expected = (
            1000 * model.joules_per_op["ops.xor"]
            + 10 * model.joules_per_op["ops.syndrome_computes"]
        )
        assert model.joules(counts) == pytest.approx(expected)

    def test_joules_ignores_unknown_ops(self):
        assert EnergyModel().joules({"ops.nonexistent": 1e9}) == 0.0

    def test_dollars_and_carbon_scale_from_kwh(self):
        model = EnergyModel(
            carbon_intensity_g_per_kwh=500.0, dollars_per_kwh=0.10
        )
        joules = 3.6e6  # exactly one kWh
        assert model.dollars(joules) == pytest.approx(0.10)
        assert model.grams_co2(joules) == pytest.approx(500.0)

    def test_from_env_overrides(self):
        model = EnergyModel.from_env(
            {ENV_CARBON: "250", ENV_DOLLARS: "0.30"}
        )
        assert model.carbon_intensity_g_per_kwh == 250.0
        assert model.dollars_per_kwh == 0.30

    def test_from_env_rejects_garbage(self):
        with pytest.raises(ObservabilityError):
            EnergyModel.from_env({ENV_CARBON: "cheap"})

    def test_describe_mentions_every_constant(self):
        text = EnergyModel().describe()
        assert "carbon_g_per_kwh=" in text
        assert "dollars_per_kwh=" in text
        for name in DEFAULT_JOULES_PER_OP:
            assert name in text

    def test_set_energy_model_swaps_and_returns_previous(self):
        replacement = EnergyModel(dollars_per_kwh=1.0)
        previous = set_energy_model(replacement)
        try:
            assert get_energy_model() is replacement
        finally:
            set_energy_model(previous)
        assert get_energy_model() is previous


class TestOpCounts:
    def test_missing_counters_read_zero(self, fresh_registry):
        counts = op_counts(fresh_registry)
        assert set(counts) == set(DEFAULT_JOULES_PER_OP)
        assert all(value == 0 for value in counts.values())

    def test_reads_live_counters(self, fresh_registry):
        fresh_registry.counter("ops.xor").inc(42)
        assert op_counts(fresh_registry)["ops.xor"] == 42


class TestDerivedMetrics:
    def _recover_once(self):
        """Drive one real recovery so every op class advances."""
        code = canonical_secded_39_32()
        engine = SwdEcc(code, rng=random.Random(0))
        due = code.encode(0x8FBF0018) ^ 0b101
        engine.recover(due)

    def test_collector_derives_energy_and_cost(self, fresh_registry):
        self._recover_once()
        snapshot = fresh_registry.as_dict()  # runs collectors
        model = get_energy_model()
        joules = model.joules(op_counts(fresh_registry))
        assert joules > 0
        assert snapshot["energy.joules_total"]["value"] == pytest.approx(
            joules
        )
        recoveries = fresh_registry.counter("swdecc.recoveries").value
        assert recoveries == 1
        assert snapshot["energy.joules_per_recovery"][
            "value"
        ] == pytest.approx(joules / recoveries)
        assert snapshot["cost.dollars_per_million_requests"][
            "value"
        ] == pytest.approx(model.dollars(joules / recoveries) * 1e6)
        assert snapshot["carbon.grams_co2_total"][
            "value"
        ] == pytest.approx(model.grams_co2(joules))
        assert snapshot["energy.model"]["value"] == model.describe()

    def test_zero_recoveries_reads_zero_not_nan(self, fresh_registry):
        snapshot = fresh_registry.as_dict()
        assert snapshot["energy.joules_per_recovery"]["value"] == 0.0
        assert snapshot["cost.dollars_per_million_requests"]["value"] == 0.0

    def test_promtext_round_trip(self, fresh_registry):
        self._recover_once()
        families = promtext.parse_exposition(promtext.render())
        model = get_energy_model()
        joules = model.joules(op_counts(fresh_registry))
        per_recovery = (
            joules / fresh_registry.counter("swdecc.recoveries").value
        )
        assert families["energy_joules_total"].sample_value() == (
            pytest.approx(joules)
        )
        assert families["energy_joules_per_recovery"].sample_value() == (
            pytest.approx(per_recovery)
        )
        assert families[
            "cost_dollars_per_million_requests"
        ].sample_value() == pytest.approx(model.dollars(per_recovery) * 1e6)
        assert families["carbon_grams_co2_total"].sample_value() == (
            pytest.approx(model.grams_co2(joules))
        )
        # The model config rides along as a labeled info metric.
        info = families["energy_model_info"]
        ((_, labels, value),) = info.samples
        assert value == 1.0
        assert labels["value"] == model.describe()

    def test_custom_model_changes_derived_cost(self, fresh_registry):
        self._recover_once()
        pricey = EnergyModel(dollars_per_kwh=1.20)
        previous = set_energy_model(pricey)
        try:
            snapshot = fresh_registry.as_dict()
            joules = pricey.joules(op_counts(fresh_registry))
            assert snapshot["cost.dollars_per_million_requests"][
                "value"
            ] == pytest.approx(pricey.dollars(joules) * 1e6)
        finally:
            set_energy_model(previous)
