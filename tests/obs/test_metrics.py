"""Unit tests for the metrics registry: counter/gauge/histogram math."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self):
        counter = Counter("c")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.inc(7)
        counter.reset()
        assert counter.value == 0

    def test_as_dict(self):
        counter = Counter("swdecc.recoveries")
        counter.inc(3)
        assert counter.as_dict() == {
            "type": "counter", "name": "swdecc.recoveries", "value": 3,
        }


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.value == pytest.approx(12.0)


class TestHistogram:
    def test_bucket_assignment_is_le(self):
        histogram = Histogram("h", buckets=(1, 2, 4))
        for value in (0.5, 1, 1.5, 2, 4, 100):
            histogram.observe(value)
        counts = dict(histogram.bucket_counts())
        # le semantics: 0.5 and 1 land in the first bucket, 1.5 and 2
        # in the second, 4 in the third, 100 in the overflow bucket.
        assert counts[1] == 2
        assert counts[2] == 2
        assert counts[4] == 1
        assert counts[float("inf")] == 1

    def test_exact_moments(self):
        histogram = Histogram("h", buckets=(10,))
        for value in (1, 2, 3, 4):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == 10
        assert histogram.mean == pytest.approx(2.5)
        assert histogram.min == 1
        assert histogram.max == 4

    def test_empty_histogram_moments(self):
        histogram = Histogram("h", buckets=(1,))
        assert histogram.count == 0
        assert histogram.mean is None
        assert histogram.min is None and histogram.max is None

    def test_quantile_estimate(self):
        histogram = Histogram("h", buckets=(1, 2, 4, 8))
        for value in (1, 1, 2, 2, 4, 8):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 1
        assert histogram.quantile(1.0) == 8
        assert histogram.quantile(0.5) in (1, 2)

    def test_quantile_range_check(self):
        histogram = Histogram("h", buckets=(1,))
        with pytest.raises(ObservabilityError):
            histogram.quantile(1.5)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", buckets=(2, 1))

    def test_reset_keeps_buckets(self):
        histogram = Histogram("h", buckets=(1, 2))
        histogram.observe(1.5)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.buckets == (1, 2)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ObservabilityError):
            registry.gauge("a")

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = MetricsRegistry()
        counter = registry.counter("a")
        counter.inc(5)
        registry.reset()
        assert counter.value == 0
        assert registry.counter("a") is counter

    def test_iteration_and_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(2)
        names = [metric.name for metric in registry]
        assert names == ["a", "b"]  # sorted
        snapshot = registry.as_dict()
        assert snapshot["b"]["value"] == 1

    def test_null_registry_discards(self):
        NULL_REGISTRY.counter("x").inc(100)
        assert NULL_REGISTRY.counter("x").value == 0
        NULL_REGISTRY.histogram("y", buckets=(1,)).observe(5)
        assert NULL_REGISTRY.histogram("y", buckets=(1,)).count == 0

    def test_default_registry_swap(self):
        original = get_registry()
        replacement = MetricsRegistry()
        try:
            previous = set_registry(replacement)
            assert previous is original
            assert get_registry() is replacement
        finally:
            set_registry(original)


class TestQuantileEdgeCases:
    def test_empty_returns_none_for_any_q(self):
        histogram = Histogram("h", buckets=(1, 2))
        assert histogram.quantile(0.0) is None
        assert histogram.quantile(0.5) is None
        assert histogram.quantile(1.0) is None

    def test_q0_is_exact_minimum(self):
        histogram = Histogram("h", buckets=(10, 20))
        histogram.observe(3.5)
        histogram.observe(17.0)
        assert histogram.quantile(0.0) == 3.5

    def test_q1_is_exact_maximum(self):
        histogram = Histogram("h", buckets=(10, 20))
        histogram.observe(3.5)
        histogram.observe(17.0)
        # clamped to the observed max, not bucket bound 20
        assert histogram.quantile(1.0) == 17.0

    def test_all_mass_in_overflow(self):
        histogram = Histogram("h", buckets=(1, 2))
        for value in (100.0, 200.0, 300.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 100.0
        assert histogram.quantile(0.5) == 300.0  # clamped from +inf
        assert histogram.quantile(1.0) == 300.0

    def test_single_observation(self):
        histogram = Histogram("h", buckets=(1, 2, 4))
        histogram.observe(3.0)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert histogram.quantile(q) == 3.0

    def test_empty_leading_buckets_skipped(self):
        histogram = Histogram("h", buckets=(1, 2, 4, 8))
        histogram.observe(5.0)
        histogram.observe(6.0)
        # rank 1 must land in the (4, 8] bucket, not a leading empty one
        assert histogram.quantile(0.5) == 6.0  # bound 8 clamped to max


class TestCacheHitRateCollector:
    def test_hit_rate_derived_at_snapshot(self):
        registry = MetricsRegistry()
        original = set_registry(registry)
        try:
            registry.counter("candidates.cache_hits").inc(3)
            registry.counter("candidates.cache_misses").inc(1)
            snapshot = registry.as_dict()
        finally:
            set_registry(original)
        assert snapshot["candidates.cache_hit_rate"]["value"] == 0.75

    def test_zero_lookups_mint_no_gauge(self):
        registry = MetricsRegistry()
        original = set_registry(registry)
        try:
            registry.counter("filter.cache_hits")
            registry.counter("filter.cache_misses")
            snapshot = registry.as_dict()
        finally:
            set_registry(original)
        assert "filter.cache_hit_rate" not in snapshot

    def test_missing_misses_counter_means_rate_one(self):
        registry = MetricsRegistry()
        original = set_registry(registry)
        try:
            registry.counter("ranker.cache_hits").inc(4)
            snapshot = registry.as_dict()
        finally:
            set_registry(original)
        assert snapshot["ranker.cache_hit_rate"]["value"] == 1.0

    def test_rate_refreshes_per_snapshot(self):
        registry = MetricsRegistry()
        original = set_registry(registry)
        try:
            hits = registry.counter("candidates.cache_hits")
            misses = registry.counter("candidates.cache_misses")
            hits.inc()
            first = registry.as_dict()["candidates.cache_hit_rate"]["value"]
            misses.inc()
            second = registry.as_dict()["candidates.cache_hit_rate"]["value"]
        finally:
            set_registry(original)
        assert first == 1.0
        assert second == 0.5
