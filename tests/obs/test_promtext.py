"""Tests for the OpenMetrics text encoder and its validating parser."""

from __future__ import annotations

import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import promtext
from repro.obs.metrics import MetricsRegistry


def _registry_with_one_of_each() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("swdecc.recoveries", help="Total recoveries").inc(7)
    registry.gauge("sweep.progress.eta_seconds").set(12.5)
    hist = registry.histogram("swdecc.latency", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(9.0)
    registry.info("run.benchmark", help="Last benchmark").set("mcf")
    return registry


class TestMetricName:
    def test_dots_become_underscores(self):
        assert promtext.metric_name("candidates.cache_hits") == \
            "candidates_cache_hits"

    def test_invalid_characters_collapse(self):
        assert promtext.metric_name("a-b c/d") == "a_b_c_d"

    def test_leading_digit_is_prefixed(self):
        assert promtext.metric_name("39_32.decodes") == "_39_32_decodes"

    def test_colons_survive(self):
        assert promtext.metric_name("ns:metric") == "ns:metric"


class TestRender:
    def test_counter_gets_total_suffix(self):
        text = promtext.render(_registry_with_one_of_each())
        assert "# TYPE swdecc_recoveries counter" in text
        assert "swdecc_recoveries_total 7" in text

    def test_help_line_emitted(self):
        text = promtext.render(_registry_with_one_of_each())
        assert "# HELP swdecc_recoveries Total recoveries" in text

    def test_histogram_buckets_are_cumulative(self):
        text = promtext.render(_registry_with_one_of_each())
        lines = text.splitlines()
        buckets = [l for l in lines if l.startswith("swdecc_latency_bucket")]
        assert buckets == [
            'swdecc_latency_bucket{le="0.1"} 1',
            'swdecc_latency_bucket{le="1.0"} 2',
            'swdecc_latency_bucket{le="+Inf"} 3',
        ]
        assert "swdecc_latency_count 3" in lines

    def test_info_becomes_labeled_gauge(self):
        text = promtext.render(_registry_with_one_of_each())
        assert "# TYPE run_benchmark_info gauge" in text
        assert 'run_benchmark_info{value="mcf"} 1' in text

    def test_ends_with_eof(self):
        text = promtext.render(_registry_with_one_of_each())
        assert text.endswith("# EOF\n")

    def test_empty_registry_is_just_eof(self):
        assert promtext.render(MetricsRegistry()) == "# EOF\n"

    def test_sanitization_collision_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        registry.counter("a_b").inc()
        with pytest.raises(ObservabilityError, match="sanitize"):
            promtext.render(registry)

    def test_info_value_labels_are_escaped(self):
        registry = MetricsRegistry()
        registry.info("run.note").set('say "hi"\nplease\\now')
        text = promtext.render(registry)
        families = promtext.parse_exposition(text)
        sample = families["run_note_info"].samples[0]
        assert sample[1]["value"] == 'say "hi"\nplease\\now'


class TestRoundTrip:
    def test_full_registry_round_trips(self):
        registry = _registry_with_one_of_each()
        families = promtext.parse_exposition(promtext.render(registry))
        assert families["swdecc_recoveries"].type == "counter"
        assert families["swdecc_recoveries"].sample_value("_total") == 7
        assert families["swdecc_recoveries"].help == "Total recoveries"
        assert families["sweep_progress_eta_seconds"].sample_value() == 12.5
        hist = families["swdecc_latency"]
        assert hist.sample_value("_count") == 3
        assert hist.sample_value(
            "_bucket", labels={"le": "+Inf"}
        ) == 3
        assert math.isclose(hist.sample_value("_sum"), 9.55)

    def test_default_registry_render_round_trips(self):
        # The process registry (with its collectors) must always encode
        # to parseable exposition — this is what /metrics serves.
        promtext.parse_exposition(promtext.render())


class TestParserRejections:
    def test_missing_eof(self):
        with pytest.raises(ObservabilityError, match="EOF"):
            promtext.parse_exposition("# TYPE a counter\na_total 1\n")

    def test_content_after_eof(self):
        with pytest.raises(ObservabilityError, match="after # EOF"):
            promtext.parse_exposition("# EOF\na 1\n")

    def test_sample_without_type(self):
        with pytest.raises(ObservabilityError, match="no matching"):
            promtext.parse_exposition("orphan 1\n# EOF\n")

    def test_suffix_disagreeing_with_type(self):
        text = "# TYPE a counter\na 1\n# EOF\n"  # counter needs _total
        with pytest.raises(ObservabilityError, match="no matching"):
            promtext.parse_exposition(text)

    def test_non_cumulative_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1.0\nh_count 3\n# EOF\n"
        )
        with pytest.raises(ObservabilityError, match="cumulative"):
            promtext.parse_exposition(text)

    def test_unsorted_bucket_bounds(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="2"} 1\n'
            'h_bucket{le="1"} 1\n'
            'h_bucket{le="+Inf"} 1\n'
            "h_sum 1.0\nh_count 1\n# EOF\n"
        )
        with pytest.raises(ObservabilityError, match="sorted"):
            promtext.parse_exposition(text)

    def test_missing_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            "h_sum 1.0\nh_count 1\n# EOF\n"
        )
        with pytest.raises(ObservabilityError, match="Inf"):
            promtext.parse_exposition(text)

    def test_inf_bucket_disagrees_with_count(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 1.0\nh_count 3\n# EOF\n"
        )
        with pytest.raises(ObservabilityError, match="_count"):
            promtext.parse_exposition(text)

    def test_duplicate_family(self):
        text = "# TYPE a counter\n# TYPE a counter\na_total 1\n# EOF\n"
        with pytest.raises(ObservabilityError, match="duplicate"):
            promtext.parse_exposition(text)

    def test_bad_type_kind(self):
        with pytest.raises(ObservabilityError, match="bad TYPE"):
            promtext.parse_exposition("# TYPE a summary\n# EOF\n")

    def test_bad_sample_value(self):
        with pytest.raises(ObservabilityError, match="bad sample value"):
            promtext.parse_exposition(
                "# TYPE a counter\na_total pretzel\n# EOF\n"
            )

    def test_family_with_no_samples(self):
        with pytest.raises(ObservabilityError, match="no samples"):
            promtext.parse_exposition("# TYPE a counter\n# EOF\n")

    def test_sample_value_raises_on_absent_sample(self):
        families = promtext.parse_exposition(
            "# TYPE a counter\na_total 1\n# EOF\n"
        )
        with pytest.raises(ObservabilityError, match="no sample"):
            families["a"].sample_value("_bucket")
