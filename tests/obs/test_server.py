"""Tests for the live observability HTTP endpoint."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ObservabilityError
from repro.obs import promtext
from repro.obs.events import DueEvent, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import ObsServer


@pytest.fixture()
def served():
    """A running server over a private registry and event log."""
    registry = MetricsRegistry()
    registry.counter("swdecc.recoveries").inc(3)
    registry.gauge("sweep.progress.patterns_done").set(5.0)
    log = EventLog(capacity=16)
    for index in range(4):
        log.record(DueEvent(received=index, num_candidates=2, num_valid=2,
                            filter_fell_back=False, chosen_message=index,
                            chosen_codeword=index, tied=1, latency_ns=100))
    server = ObsServer(port=0, registry=registry, event_log=log).start()
    try:
        yield server, registry, log
    finally:
        server.stop()


def _get(server: ObsServer, path: str) -> tuple[int, str, str]:
    try:
        with urllib.request.urlopen(server.url + path, timeout=5) as response:
            return (response.status, response.headers["Content-Type"],
                    response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, error.headers["Content-Type"], \
            error.read().decode("utf-8")


class TestEndpoints:
    def test_metrics_is_valid_exposition(self, served):
        server, _, _ = served
        status, content_type, body = _get(server, "/metrics")
        assert status == 200
        assert content_type == promtext.CONTENT_TYPE
        families = promtext.parse_exposition(body)
        assert families["swdecc_recoveries"].sample_value("_total") == 3
        assert families[
            "sweep_progress_patterns_done"
        ].sample_value() == 5.0

    def test_metrics_json_mirrors_registry(self, served):
        server, registry, _ = served
        status, content_type, body = _get(server, "/metrics.json")
        assert status == 200
        assert content_type == "application/json"
        assert json.loads(body) == registry.as_dict()

    def test_events_returns_json_lines(self, served):
        server, _, log = served
        status, content_type, body = _get(server, "/events")
        assert status == 200
        assert content_type == "application/x-ndjson"
        lines = [json.loads(line) for line in body.splitlines()]
        assert len(lines) == 4
        assert [entry["received"] for entry in lines] == [0, 1, 2, 3]

    def test_events_limit_keeps_newest(self, served):
        server, _, _ = served
        _, _, body = _get(server, "/events?limit=2")
        lines = [json.loads(line) for line in body.splitlines()]
        assert [entry["received"] for entry in lines] == [2, 3]

    @pytest.mark.parametrize("raw", ["soon", "0", "-3", "1.5"])
    def test_events_bad_limit_is_400_json(self, served, raw):
        server, _, _ = served
        status, content_type, body = _get(server, f"/events?limit={raw}")
        assert status == 400
        assert content_type == "application/json"
        error = json.loads(body)
        assert "bad limit" in error["error"]
        assert "positive integer" in error["error"]

    def test_spans_reports_tracing_disabled(self, served):
        server, _, _ = served
        status, _, body = _get(server, "/spans")
        assert status == 200
        assert json.loads(body) == {"tracing": False, "stages": {}}

    def test_healthz(self, served):
        server, _, _ = served
        status, _, body = _get(server, "/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_unknown_path_is_404(self, served):
        server, _, _ = served
        status, _, body = _get(server, "/nope")
        assert status == 404
        assert "no such endpoint" in body

    def test_scrape_sees_live_updates(self, served):
        server, registry, _ = served
        registry.counter("swdecc.recoveries").inc(10)
        _, _, body = _get(server, "/metrics")
        families = promtext.parse_exposition(body)
        assert families["swdecc_recoveries"].sample_value("_total") == 13


class TestTraceEndpoints:
    @pytest.fixture()
    def traced(self, served):
        from repro.obs import trace as obs_trace

        collector = obs_trace.enable_tracing(obs_trace.SpanCollector())
        try:
            yield served[0], collector
        finally:
            obs_trace.disable_tracing()

    @staticmethod
    def _finish_request(collector, trace_id: str, duration_ns: int):
        from repro.obs.trace import Span

        collector.begin_trace(trace_id)
        collector.record(Span(
            name="service.stage.shard_exec", start_ns=10,
            end_ns=duration_ns - 10, depth=1, span_id=2, parent_id=1,
            trace_id=trace_id,
        ))
        collector.record(Span(
            name="service.request", start_ns=0, end_ns=duration_ns,
            depth=0, span_id=1, parent_id=None, trace_id=trace_id,
        ))
        collector.finish_trace(trace_id, root_span_id=1)

    def test_spans_json_returns_forest(self, traced):
        server, _ = traced
        from repro.obs.trace import span
        with span("outer"):
            with span("inner"):
                pass
        status, content_type, body = _get(server, "/spans?format=json")
        assert status == 200
        assert content_type == "application/json"
        payload = json.loads(body)
        assert payload["tracing"] is True
        assert payload["span_count"] == 2
        assert payload["dropped"] == 0
        (root,) = payload["spans"]
        assert root["name"] == "outer"
        assert [c["name"] for c in root["children"]] == ["inner"]

    def test_spans_summary_still_default(self, traced):
        server, _ = traced
        from repro.obs.trace import span
        with span("stage"):
            pass
        _, _, body = _get(server, "/spans")
        payload = json.loads(body)
        assert payload["tracing"] is True
        assert payload["stages"]["stage"]["count"] == 1

    def test_spans_bad_format_is_400(self, traced):
        server, _ = traced
        status, content_type, body = _get(server, "/spans?format=xml")
        assert status == 400
        assert content_type == "application/json"
        assert "bad format" in json.loads(body)["error"]

    def test_traces_lists_slowest_first(self, traced):
        server, collector = traced
        self._finish_request(collector, "aa" * 16, 1_000_000)
        self._finish_request(collector, "bb" * 16, 5_000_000)
        status, content_type, body = _get(server, "/traces")
        assert status == 200
        assert content_type == "application/json"
        payload = json.loads(body)
        assert payload["tracing"] is True
        assert payload["count"] == 2
        assert [t["trace_id"] for t in payload["traces"]] == \
            ["bb" * 16, "aa" * 16]
        root = payload["traces"][0]["root"]
        assert root["name"] == "service.request"
        assert [c["name"] for c in root["children"]] == \
            ["service.stage.shard_exec"]

    def test_traces_limit(self, traced):
        server, collector = traced
        for index in range(3):
            self._finish_request(
                collector, f"{index:032x}", (index + 1) * 1_000
            )
        _, _, body = _get(server, "/traces?limit=1")
        payload = json.loads(body)
        assert payload["count"] == 1
        assert payload["traces"][0]["trace_id"] == f"{2:032x}"

    def test_traces_bad_limit_is_400(self, traced):
        server, _ = traced
        status, _, body = _get(server, "/traces?limit=zero")
        assert status == 400
        assert "bad limit" in json.loads(body)["error"]

    def test_traces_with_tracing_disabled(self, served):
        server, _, _ = served
        status, _, body = _get(server, "/traces")
        assert status == 200
        assert json.loads(body) == {
            "tracing": False, "count": 0, "traces": [],
        }


class TestLifecycle:
    def test_port_zero_resolves_to_real_port(self, served):
        server, _, _ = served
        assert server.port != 0
        assert server.url == f"http://127.0.0.1:{server.port}"
        assert server.running

    def test_double_start_raises(self, served):
        server, _, _ = served
        with pytest.raises(ObservabilityError, match="already running"):
            server.start()

    def test_stop_is_idempotent_and_releases(self, served):
        server, _, _ = served
        server.stop()
        assert not server.running
        server.stop()  # no error

    def test_context_manager(self):
        registry = MetricsRegistry()
        with ObsServer(port=0, registry=registry) as server:
            status, _, _ = _get(server, "/healthz")
            assert status == 200
        assert not server.running

    def test_defaults_to_process_registry(self):
        server = ObsServer(port=0)
        from repro.obs.metrics import get_registry
        assert server.registry is get_registry()
