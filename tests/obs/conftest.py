"""Shared fixtures: isolate each obs test from prior global state."""

from __future__ import annotations

import pytest

from repro.obs import events as obs_events
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Start each test with an empty event log and tracing disabled."""
    obs_events.get_event_log().clear()
    obs_trace.disable_tracing()
    yield
    obs_events.get_event_log().clear()
    obs_trace.disable_tracing()
