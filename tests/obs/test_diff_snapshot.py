"""diff_snapshot: incremental shard metric shipping stays exact."""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, diff_snapshot, merge_snapshot


def test_counter_delta_is_value_difference():
    registry = MetricsRegistry()
    counter = registry.counter("work.done")
    counter.inc(5)
    first = registry.as_dict()
    counter.inc(3)
    delta = diff_snapshot(first, registry.as_dict())
    assert delta["work.done"]["value"] == 3


def test_unchanged_counters_are_omitted():
    registry = MetricsRegistry()
    registry.counter("work.done").inc(5)
    registry.counter("work.idle")
    snapshot = registry.as_dict()
    delta = diff_snapshot(snapshot, snapshot)
    assert delta == {}


def test_gauges_and_info_never_ship():
    registry = MetricsRegistry()
    registry.gauge("depth").set(4.0)
    registry.info("build").set("abc")
    delta = diff_snapshot({}, registry.as_dict())
    assert "depth" not in delta
    assert "build" not in delta


def test_histogram_delta_covers_buckets_sum_and_count():
    registry = MetricsRegistry()
    hist = registry.histogram("latency", buckets=(1.0, 2.0))
    hist.observe(0.5)
    first = registry.as_dict()
    hist.observe(1.5)
    hist.observe(5.0)
    delta = diff_snapshot(first, registry.as_dict())["latency"]
    assert delta["count"] == 2
    assert delta["sum"] == 6.5
    assert [entry["count"] for entry in delta["buckets"]] == [0, 1, 1]


def test_repeated_deltas_merge_to_the_cumulative_truth():
    """ship(delta1); ship(delta2) == one merge of the final snapshot."""
    shard = MetricsRegistry()
    parent = MetricsRegistry()
    counter = shard.counter("service.recoveries")
    hist = shard.histogram("service.batch_seconds", buckets=(0.1, 1.0))

    shipped = {}
    for round_values in ((0.05, 0.5), (2.0,), ()):
        counter.inc(len(round_values))
        for value in round_values:
            hist.observe(value)
        current = shard.as_dict()
        merge_snapshot(diff_snapshot(shipped, current), parent)
        shipped = current

    assert parent.counter("service.recoveries").value == counter.value
    merged = parent.histogram("service.batch_seconds", buckets=(0.1, 1.0))
    assert merged.count == hist.count
    assert merged.sum == hist.sum
    assert merged.min == hist.min
    assert merged.max == hist.max
    assert merged.bucket_counts() == hist.bucket_counts()


def test_new_histogram_ships_whole_when_unseen():
    registry = MetricsRegistry()
    registry.histogram("fresh", buckets=(1.0,)).observe(0.5)
    delta = diff_snapshot({}, registry.as_dict())
    assert delta["fresh"]["count"] == 1


def test_empty_new_histogram_is_omitted():
    registry = MetricsRegistry()
    registry.histogram("idle", buckets=(1.0,))
    assert diff_snapshot({}, registry.as_dict()) == {}
