"""Tests for the live sweep-progress tracker and its gauges."""

from __future__ import annotations

import io

from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import SweepProgress


def _gauges(registry: MetricsRegistry) -> dict[str, float]:
    return {
        name: registry.get(name).value
        for name in (
            "sweep.progress.patterns_done",
            "sweep.progress.total_patterns",
            "sweep.progress.eta_seconds",
        )
    }


class TestGaugeUpdates:
    def test_chunks_advance_done_and_counter(self):
        registry = MetricsRegistry()
        progress = SweepProgress(registry=registry)
        progress.add_total(100)
        progress.on_chunk(25)
        progress.on_chunk(25)
        gauges = _gauges(registry)
        assert gauges["sweep.progress.patterns_done"] == 50
        assert gauges["sweep.progress.total_patterns"] == 100
        assert registry.get("sweep.chunks_completed").value == 2
        assert progress.done == 50
        assert progress.total == 100

    def test_add_total_is_cumulative(self):
        registry = MetricsRegistry()
        progress = SweepProgress(registry=registry)
        progress.add_total(10)
        progress.add_total(30)
        assert _gauges(registry)["sweep.progress.total_patterns"] == 40

    def test_metric_names_are_fixed(self):
        # Bounded cardinality: one benchmark or ten, same four names.
        registry = MetricsRegistry()
        progress = SweepProgress(registry=registry)
        for _ in range(10):
            progress.add_total(5)
            progress.on_chunk(5)
        assert registry.names() == [
            "sweep.chunks_completed",
            "sweep.progress.eta_seconds",
            "sweep.progress.patterns_done",
            "sweep.progress.total_patterns",
        ]

    def test_shared_tracker_accumulates_across_users(self):
        # run_many shares one tracker across benchmarks; gauges must
        # only ever advance.
        registry = MetricsRegistry()
        progress = SweepProgress(registry=registry)
        observed = []
        for _ in range(3):
            progress.add_total(8)
            progress.on_chunk(8)
            observed.append(_gauges(registry)["sweep.progress.patterns_done"])
        assert observed == sorted(observed) == [8, 16, 24]


class TestRateAndEta:
    def test_rate_zero_before_any_chunk(self):
        progress = SweepProgress(registry=MetricsRegistry())
        assert progress.rate() == 0.0
        assert progress.eta_seconds() == 0.0

    def test_eta_zero_when_done(self):
        registry = MetricsRegistry()
        progress = SweepProgress(registry=registry)
        progress.add_total(4)
        progress.on_chunk(4)
        assert progress.eta_seconds() == 0.0
        assert _gauges(registry)["sweep.progress.eta_seconds"] == 0.0

    def test_eta_positive_mid_run(self):
        registry = MetricsRegistry()
        progress = SweepProgress(registry=registry)
        progress.add_total(100)
        progress.on_chunk(10)
        if progress.rate() > 0:  # monotonic clock may tick 0 elapsed
            assert progress.eta_seconds() > 0.0

    def test_finish_zeroes_eta_gauge(self):
        registry = MetricsRegistry()
        progress = SweepProgress(registry=registry)
        progress.add_total(100)
        progress.on_chunk(10)
        progress.finish()
        assert _gauges(registry)["sweep.progress.eta_seconds"] == 0.0


class TestRenderedLine:
    def test_line_contents(self):
        progress = SweepProgress(registry=MetricsRegistry())
        progress.add_total(48)
        progress.on_chunk(12, success_sum=6.0)
        line = progress.render_line()
        assert "sweep: 12/48 patterns" in line
        assert "25.0%" in line
        assert "mean success 0.500" in line
        assert "eta" in line

    def test_line_says_done_at_completion(self):
        progress = SweepProgress(registry=MetricsRegistry())
        progress.add_total(4)
        progress.on_chunk(4)
        assert progress.render_line().endswith("done")

    def test_custom_unit(self):
        progress = SweepProgress(registry=MetricsRegistry(), unit="trials")
        progress.add_total(2)
        progress.on_chunk(1)
        line = progress.render_line()
        assert "trials" in line
        assert "mean success" not in line  # patterns-only decoration

    def test_overrun_clamps_percent(self):
        progress = SweepProgress(registry=MetricsRegistry())
        progress.add_total(4)
        progress.on_chunk(8)  # more work landed than announced
        assert "sweep: 8/8 patterns (100.0%)" in progress.render_line()


class TestStream:
    def test_stream_gets_carriage_return_updates(self):
        stream = io.StringIO()
        progress = SweepProgress(registry=MetricsRegistry(), stream=stream)
        progress.add_total(10)
        progress.on_chunk(5)
        progress.on_chunk(5)
        assert stream.getvalue().count("\r") == 2
        assert "\n" not in stream.getvalue()

    def test_finish_terminates_line_once(self):
        stream = io.StringIO()
        progress = SweepProgress(registry=MetricsRegistry(), stream=stream)
        progress.add_total(10)
        progress.on_chunk(10)
        progress.finish()
        progress.finish()  # double-finish must not write twice
        assert stream.getvalue().count("\n") == 1

    def test_finish_without_chunks_writes_nothing(self):
        stream = io.StringIO()
        progress = SweepProgress(registry=MetricsRegistry(), stream=stream)
        progress.finish()
        assert stream.getvalue() == ""

    def test_no_stream_is_silent(self):
        progress = SweepProgress(registry=MetricsRegistry())
        progress.add_total(1)
        progress.on_chunk(1)
        progress.finish()  # no stream: nothing to terminate, no error


class TestSessionReset:
    """A new tracker = a new sweep session: stale per-run state is
    scrubbed so a second sweep in the same process never serves the
    previous run's totals/ETA during its ramp-up."""

    def test_new_tracker_resets_stale_progress_gauges(self):
        registry = MetricsRegistry()
        first = SweepProgress(registry=registry)
        first.add_total(100)
        first.on_chunk(100)
        first.finish()
        # What DueSweep.run records when the first sweep completes.
        registry.gauge("sweep.last_wall_seconds").set(3.5)
        registry.info("sweep.last_benchmark").set("mcf")

        SweepProgress(registry=registry)
        gauges = _gauges(registry)
        assert gauges["sweep.progress.patterns_done"] == 0.0
        assert gauges["sweep.progress.total_patterns"] == 0.0
        assert gauges["sweep.progress.eta_seconds"] == 0.0
        assert registry.get("sweep.last_wall_seconds").value == 0.0
        assert registry.get("sweep.last_benchmark").value == ""

    def test_counter_survives_session_reset(self):
        # chunks_completed is cumulative over the process lifetime.
        registry = MetricsRegistry()
        first = SweepProgress(registry=registry)
        first.add_total(8)
        first.on_chunk(8)
        SweepProgress(registry=registry)
        assert registry.get("sweep.chunks_completed").value == 1

    def test_reset_does_not_mint_last_run_metrics(self):
        # Only a sweep that actually ran registers the last-run pair;
        # constructing a tracker in a fresh registry must not add them.
        registry = MetricsRegistry()
        SweepProgress(registry=registry)
        assert registry.get("sweep.last_wall_seconds") is None
        assert registry.get("sweep.last_benchmark") is None
