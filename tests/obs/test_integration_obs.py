"""Integration: the pipeline emits consistent metrics, spans, and events."""

from __future__ import annotations

import random

import pytest

from repro.analysis.experiments import default_code
from repro.analysis.sweep import DueSweep, RecoveryStrategy
from repro.core import RecoveryContext, SwdEcc
from repro.ecc.channel import pattern_from_positions
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.export import render_events_summary, render_metrics, render_spans
from repro.program.stats import FrequencyTable
from repro.program.synth import synthesize_benchmark


@pytest.fixture(scope="module")
def code():
    return default_code()


@pytest.fixture(scope="module")
def image():
    return synthesize_benchmark("mcf", length=256)


@pytest.fixture(scope="module")
def context(image):
    return RecoveryContext.for_instructions(FrequencyTable.from_image(image))


def _due_word(code, image, bits=(1, 4)):
    word = image.words[0]
    received = code.encode(word)
    for position in bits:
        received ^= 1 << (code.n - 1 - position)
    return word, received


class TestOneRecoverOneEvent:
    def test_single_recover_emits_exactly_one_consistent_event(
        self, code, image, context
    ):
        log = obs_events.get_event_log()
        engine = SwdEcc(code, rng=random.Random(0))
        original, received = _due_word(code, image)
        result = engine.recover(received, context)
        assert len(log) == 1
        event = log.last()
        assert event.received == result.received == received
        assert event.num_candidates == result.num_candidates
        assert event.num_valid == result.num_valid
        assert event.filter_fell_back == result.filter_fell_back
        assert event.chosen_message == result.chosen_message
        assert event.chosen_codeword == result.chosen_codeword
        assert event.tied == result.tied
        assert event.latency_ns > 0
        assert event.true_message is None  # engine cannot know truth

    def test_counters_advance_per_recover(self, code, image, context):
        registry = obs_metrics.get_registry()
        before = registry.counter("swdecc.recoveries").value
        engine = SwdEcc(code, rng=random.Random(0))
        _, received = _due_word(code, image)
        engine.recover(received, context)
        engine.recover(received, context)
        assert registry.counter("swdecc.recoveries").value == before + 2

    def test_candidate_histogram_observes(self, code, image, context):
        histogram = obs_metrics.get_registry().histogram("swdecc.candidates")
        before = histogram.count
        engine = SwdEcc(code, rng=random.Random(0))
        _, received = _due_word(code, image)
        result = engine.recover(received, context)
        assert histogram.count == before + 1
        assert histogram.max >= result.num_candidates >= histogram.min


class TestSpansAcrossStages:
    def test_recover_produces_nested_stage_spans(self, code, image, context):
        collector = obs_trace.enable_tracing()
        try:
            engine = SwdEcc(code, rng=random.Random(0))
            _, received = _due_word(code, image)
            engine.recover(received, context)
        finally:
            obs_trace.disable_tracing()
        summary = collector.summary()
        for stage in ("swdecc.recover", "swdecc.enumerate", "swdecc.filter",
                      "swdecc.rank", "swdecc.choose"):
            assert summary[stage]["count"] == 1, stage
        parent = next(
            s for s in collector.spans if s.name == "swdecc.recover"
        )
        children = [
            s for s in collector.spans if s.parent_id == parent.span_id
        ]
        assert {s.name for s in children} == {
            "swdecc.enumerate", "swdecc.filter", "swdecc.rank",
            "swdecc.choose",
        }
        # Stage time is contained in the parent recover span.
        assert sum(s.duration_ns for s in children) <= parent.duration_ns


class TestSweepObservability:
    def test_sweep_records_wall_time_and_benchmark_identity(self, code, image):
        registry = obs_metrics.get_registry()
        histogram = registry.histogram("sweep.benchmark_wall_seconds")
        log = obs_events.get_event_log()
        patterns = (pattern_from_positions((1, 4), code.n),
                    pattern_from_positions((2, 7), code.n))
        sweep = DueSweep(
            code,
            RecoveryStrategy.FILTER_AND_RANK,
            num_instructions=3,
            patterns=patterns,
        )
        before = histogram.count
        recoveries_before = registry.counter("swdecc.recoveries").value
        events_before = len(log)
        sweep.run(image)
        assert histogram.count == before + 1
        assert histogram.sum > 0
        # One recovery per (pattern, instruction) — counted even through
        # the vectorized fast path, which skips per-DUE event records so
        # exhaustive sweeps don't churn the bounded ring.
        assert (
            registry.counter("swdecc.recoveries").value
            == recoveries_before + len(patterns) * 3
        )
        assert len(log) == events_before
        # Benchmark identity lives in an info metric, not a per-image
        # gauge name, so the registry stays bounded across images.
        assert registry.gauge("sweep.last_wall_seconds").value > 0
        assert registry.info("sweep.last_benchmark").value == image.name
        snapshot = registry.as_dict()
        assert f"sweep.wall_seconds[{image.name}]" not in snapshot


class TestRenderers:
    def test_render_helpers_produce_tables(self, code, image, context):
        collector = obs_trace.enable_tracing()
        try:
            engine = SwdEcc(code, rng=random.Random(0))
            _, received = _due_word(code, image)
            engine.recover(received, context)
        finally:
            obs_trace.disable_tracing()
        metrics_text = render_metrics(obs_metrics.get_registry())
        assert "swdecc.recoveries" in metrics_text
        spans_text = render_spans(collector)
        assert "swdecc.rank" in spans_text
        events_text = render_events_summary(obs_events.get_event_log())
        assert "events retained" in events_text

    def test_memory_stats_collector_feeds_registry(self, code):
        from repro.memory.model import EccMemory

        memory = EccMemory(code)
        memory.write(0, 0x1234)
        memory.read(0)
        snapshot = obs_metrics.get_registry().as_dict()
        assert snapshot["memory.reads"]["value"] >= 1
        assert snapshot["memory.writes"]["value"] >= 1
