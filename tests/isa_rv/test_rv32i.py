"""Tests for the RV32I legality oracle and workload synthesis."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IllegalInstructionError
from repro.isa_rv import (
    RV32I_MIX,
    RV32I_MNEMONICS,
    generate_rv32i_words,
    is_legal,
    mnemonic_of,
    try_mnemonic,
)
from repro.isa_rv.decoder import (
    encode_b,
    encode_i,
    encode_j,
    encode_r,
    encode_s,
    encode_u,
)


class TestGoldenEncodings:
    """Known words from real RISC-V toolchains."""

    @pytest.mark.parametrize(
        "word,mnemonic",
        [
            (0x00000013, "addi"),    # nop = addi x0, x0, 0
            (0x00008067, "jalr"),    # ret = jalr x0, 0(ra)
            (0x00112623, "sw"),      # sw ra, 12(sp)
            (0x00C12083, "lw"),      # lw ra, 12(sp)
            (0xFF010113, "addi"),    # addi sp, sp, -16
            (0x00000037, "lui"),     # lui x0, 0
            (0x00000097, "auipc"),   # auipc ra, 0
            (0x0000006F, "jal"),     # jal x0, 0 (j .)
            (0x00B50463, "beq"),     # beq a0, a1, +8
            (0x40B50533, "sub"),     # sub a0, a0, a1
            (0x00B51533, "sll"),     # sll a0, a0, a1
            (0x40555513, "srai"),    # srai a0, a0, 5
            (0x00000073, "ecall"),
            (0x00100073, "ebreak"),
            (0x0FF0000F, "fence"),
            (0x34002473, "csrrs"),   # csrr s0, mscratch
        ],
    )
    def test_decodes_to(self, word, mnemonic):
        assert mnemonic_of(word) == mnemonic

    @pytest.mark.parametrize(
        "word",
        [
            0x00000000,  # all zero: defined illegal in RISC-V
            0xFFFFFFFF,  # all ones: illegal
            0x00000001,  # compressed-space (low bits != 11)
            0x0000007F,  # unpopulated major opcode
            0x00001067,  # jalr with funct3 != 0
            0x00003003,  # load funct3=011 (ld: RV64 only)
            0x00003023,  # store funct3=011 (sd: RV64 only)
            0x02000033,  # OP funct7=0000001 (MUL: M extension)
            0x00200073,  # SYSTEM imm=2 (neither ecall nor ebreak)
            0x00004073,  # SYSTEM funct3=100 (reserved)
            0x0000200F,  # MISC-MEM funct3=010 (reserved)
            0x00002063,  # BRANCH funct3=010 (reserved)
        ],
    )
    def test_illegal_words(self, word):
        assert not is_legal(word)
        with pytest.raises(IllegalInstructionError):
            mnemonic_of(word)

    def test_zero_word_is_illegal_unlike_mips(self):
        # In MIPS the all-zero word is a nop (sll); RISC-V made it
        # deliberately illegal. Both behaviours are load-bearing in
        # their respective oracles.
        from repro.isa.decoder import is_legal as mips_is_legal

        assert mips_is_legal(0)
        assert not is_legal(0)


class TestEncoders:
    def test_r_type_roundtrip(self):
        word = encode_r(0b0110011, 0, 0b0100000, rd=10, rs1=10, rs2=11)
        assert mnemonic_of(word) == "sub"

    def test_i_type_negative_immediate(self):
        word = encode_i(0b0010011, 0, rd=2, rs1=2, imm=-16)
        assert mnemonic_of(word) == "addi"
        assert (word >> 20) == 0xFF0  # two's complement image

    def test_s_type_immediate_split(self):
        word = encode_s(0b0100011, 2, rs1=2, rs2=1, imm=12)
        assert mnemonic_of(word) == "sw"
        assert word == 0x00112623

    def test_b_type_offset(self):
        word = encode_b(0b1100011, 0, rs1=10, rs2=11, offset=8)
        assert word == 0x00B50463

    def test_u_and_j_types(self):
        assert mnemonic_of(encode_u(0b0110111, 5, 0x12345)) == "lui"
        assert mnemonic_of(encode_j(0b1101111, 1, 2048)) == "jal"

    def test_encoder_validation(self):
        with pytest.raises(ValueError):
            encode_i(0b0010011, 0, 1, 1, 5000)
        with pytest.raises(ValueError):
            encode_b(0b1100011, 0, 1, 1, 3)  # odd offset
        with pytest.raises(ValueError):
            encode_r(0b0110011, 0, 0, 32, 0, 0)  # bad register


class TestDecodeProperties:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=300)
    def test_never_crashes(self, word):
        mnemonic = try_mnemonic(word)
        if mnemonic is not None:
            assert mnemonic in RV32I_MNEMONICS

    def test_word_range_checked(self):
        with pytest.raises(ValueError):
            is_legal(1 << 32)

    def test_density_is_sparse(self):
        rng = random.Random(0)
        legal = sum(1 for _ in range(20_000) if is_legal(rng.getrandbits(32)))
        assert legal / 20_000 < 0.10  # vs ~0.58 for MIPS-I


class TestSynthesis:
    def test_every_word_legal_and_matches_mix(self):
        words = generate_rv32i_words(2048)
        assert all(is_legal(word) for word in words)
        from collections import Counter

        histogram = Counter(try_mnemonic(word) for word in words)
        total = sum(histogram.values())
        assert histogram["lw"] / total == pytest.approx(
            RV32I_MIX["lw"], abs=0.05
        )

    def test_deterministic(self):
        assert generate_rv32i_words(128, seed=4) == generate_rv32i_words(128, seed=4)
        assert generate_rv32i_words(128, seed=4) != generate_rv32i_words(128, seed=5)

    def test_length_validated(self):
        from repro.errors import ProgramImageError

        with pytest.raises(ProgramImageError):
            generate_rv32i_words(0)
