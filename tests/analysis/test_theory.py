"""Tests for the analytical model vs the empirical machinery."""

from __future__ import annotations

import math

import pytest

from repro.analysis.theory import (
    effective_mnemonics,
    expected_filter_only_success,
    expected_random_candidate_success,
    mnemonic_entropy,
    pair_xor_multiplicities,
    predicted_candidate_counts,
    predicted_count_distribution,
)
from repro.ecc.candidates import candidate_count_profile
from repro.ecc.hsiao import hsiao_72_64
from repro.errors import AnalysisError
from repro.program.stats import FrequencyTable


class TestCandidateCountPrediction:
    def test_prediction_matches_enumeration_exactly(self, code):
        """The central theoretical identity: the Fig. 4 heatmap equals
        the column pair-XOR multiplicities, cell for cell."""
        predicted = predicted_candidate_counts(code)
        measured = candidate_count_profile(code).counts
        assert predicted == measured

    def test_prediction_matches_for_72_64(self):
        code = hsiao_72_64()
        predicted = predicted_candidate_counts(code)
        measured = candidate_count_profile(code).counts
        assert predicted == measured

    def test_distribution_sums_to_pattern_count(self, code):
        distribution = predicted_count_distribution(code)
        assert sum(distribution.values()) == 741

    def test_distribution_matches_profile_histogram(self, code):
        from collections import Counter

        profile = candidate_count_profile(code)
        measured = Counter(profile.counts.values())
        assert predicted_count_distribution(code) == dict(measured)

    def test_multiplicities_cover_all_pairs(self, code):
        multiplicities = pair_xor_multiplicities(code)
        assert sum(multiplicities.values()) == 741
        # Distance 4 guarantees no pair-XOR is zero and none collide
        # into weight-1 columns... at minimum, all values non-zero.
        assert 0 not in multiplicities


class TestRandomBaselinePrediction:
    def test_exact_value_for_canonical_code(self, code):
        expected = expected_random_candidate_success(code)
        # Must equal the mean of reciprocal counts over the profile.
        profile = candidate_count_profile(code)
        empirical = sum(
            1.0 / count for count in profile.counts.values()
        ) / len(profile.counts)
        assert expected == pytest.approx(empirical)

    def test_value_near_one_twelfth(self, code):
        # The paper's baseline concentrates near 1/12.
        assert 0.07 <= expected_random_candidate_success(code) <= 0.10


class TestFilterOnlyModel:
    def test_p_one_degenerates_to_random(self):
        # Everything legal: filtering does nothing.
        assert expected_filter_only_success(12, 1.0) == pytest.approx(1 / 12)

    def test_p_zero_is_certain_recovery(self):
        # No competitor survives: the original is always chosen.
        assert expected_filter_only_success(12, 0.0) == 1.0

    def test_monotone_decreasing_in_p(self):
        values = [
            expected_filter_only_success(12, p)
            for p in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert values == sorted(values, reverse=True)

    def test_closed_form_matches_binomial_sum(self):
        # Cross-check the closed form against the explicit expectation.
        count, p = 12, 0.58
        explicit = sum(
            math.comb(count - 1, k) * p**k * (1 - p) ** (count - 1 - k) / (1 + k)
            for k in range(count)
        )
        assert expected_filter_only_success(count, p) == pytest.approx(explicit)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            expected_filter_only_success(0, 0.5)
        with pytest.raises(AnalysisError):
            expected_filter_only_success(12, 1.5)


class TestSideInformationEntropy:
    def test_uniform_distribution_entropy(self):
        table = FrequencyTable.from_counts("u", {f"op{i}": 1 for i in range(8)})
        assert mnemonic_entropy(table) == pytest.approx(3.0)
        assert effective_mnemonics(table) == pytest.approx(8.0)

    def test_degenerate_distribution_entropy(self):
        table = FrequencyTable.from_counts("d", {"lw": 100})
        assert mnemonic_entropy(table) == pytest.approx(0.0)
        assert effective_mnemonics(table) == pytest.approx(1.0)

    def test_spec_like_mix_is_concentrated(self, mcf_table):
        entropy = mnemonic_entropy(mcf_table)
        uniform_entropy = math.log2(len(mcf_table.counts))
        assert entropy < 0.85 * uniform_entropy
        assert effective_mnemonics(mcf_table) < len(mcf_table.counts)


class TestTripleErrorOutcomes:
    def test_partition_covers_all_patterns(self, code):
        from math import comb

        from repro.analysis.theory import triple_error_outcomes

        outcomes = triple_error_outcomes(code)
        assert outcomes["miscorrected"] + outcomes["detected"] == comb(39, 3)

    def test_matches_decoder_behaviour_sampled(self, code):
        import random

        from repro.analysis.theory import triple_error_outcomes
        from repro.ecc.code import DecodeStatus

        outcomes = triple_error_outcomes(code)
        # Cross-check the analytic classification against the actual
        # decoder on a random sample of triples and codewords.
        rng = random.Random(5)
        miscorrected = 0
        detected = 0
        trials = 400
        for _ in range(trials):
            codeword = code.encode(rng.getrandbits(32))
            positions = rng.sample(range(code.n), 3)
            received = codeword
            for position in positions:
                received ^= 1 << (code.n - 1 - position)
            status = code.decode(received).status
            if status is DecodeStatus.CORRECTED:
                miscorrected += 1
            elif status is DecodeStatus.DUE:
                detected += 1
        empirical_rate = miscorrected / trials
        analytic_rate = outcomes["miscorrected"] / (
            outcomes["miscorrected"] + outcomes["detected"]
        )
        assert abs(empirical_rate - analytic_rate) < 0.1
        assert miscorrected + detected == trials

    def test_rejects_non_secded_codes(self):
        from repro.analysis.theory import triple_error_outcomes
        from repro.ecc.hamming import hamming_code
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            triple_error_outcomes(hamming_code(3))  # d = 3: has w-3 codewords
