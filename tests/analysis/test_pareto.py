"""Pareto frontier mechanics, decoupled from real sweeps.

The end-to-end measurement path (real DueSweep, real counters) is
exercised by ``scripts/pareto_smoke.py`` in CI; these tests pin the
dominance logic and the bench-record format on synthetic points, where
every edge (ties, latency axis, corrupt history files) is cheap to
construct.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.pareto import (
    PARETO_CODES,
    ParetoPoint,
    append_energy_record,
    pareto_front,
    sweep_pareto,
)
from repro.errors import AnalysisError


def _point(code, rate, joules, seconds=1.0):
    return ParetoPoint(
        code=code,
        strategy="filter-and-rank",
        recovery_rate=rate,
        joules_per_recovery=joules,
        seconds_per_recovery=seconds,
        recoveries=100,
        joules=joules * 100,
        ops={"ops.xor": 1},
    )


class TestParetoFront:
    def test_dominated_point_is_dropped(self):
        cheap_good = _point("a", rate=0.9, joules=1.0)
        pricey_bad = _point("b", rate=0.5, joules=2.0)
        front = pareto_front([cheap_good, pricey_bad])
        assert front == [cheap_good]

    def test_trade_off_points_all_survive_sorted_by_energy(self):
        cheap_weak = _point("a", rate=0.2, joules=1.0)
        pricey_strong = _point("b", rate=0.9, joules=3.0)
        front = pareto_front([pricey_strong, cheap_weak])
        assert front == [cheap_weak, pricey_strong]

    def test_latency_axis_can_rescue_a_point(self):
        slow_strong = _point("a", rate=0.9, joules=1.0, seconds=9.0)
        fast_equal = _point("b", rate=0.9, joules=1.0, seconds=1.0)
        assert pareto_front([slow_strong, fast_equal]) == [fast_equal]
        # In the 2-D view they are coincident: both non-dominated.
        both = pareto_front(
            [slow_strong, fast_equal], include_latency=False
        )
        assert set(p.code for p in both) == {"a", "b"}

    def test_identical_points_are_both_kept(self):
        twin_a = _point("a", rate=0.5, joules=1.0)
        twin_b = _point("b", rate=0.5, joules=1.0)
        assert len(pareto_front([twin_a, twin_b])) == 2

    def test_single_point_is_its_own_frontier(self):
        only = _point("a", rate=0.1, joules=5.0)
        assert pareto_front([only]) == [only]


class TestSweepParetoValidation:
    def test_empty_codes_rejected(self):
        with pytest.raises(AnalysisError):
            sweep_pareto(codes={})

    def test_empty_strategies_rejected(self):
        with pytest.raises(AnalysisError):
            sweep_pareto(strategies=())

    def test_default_code_set_is_secded_family(self):
        assert len(PARETO_CODES) >= 3
        for factory in PARETO_CODES.values():
            code = factory()
            assert (code.n, code.k) == (39, 32)


class TestEnergyRecord:
    def test_appends_and_marks_frontier(self, tmp_path):
        path = tmp_path / "BENCH_energy.json"
        points = [
            _point("a", rate=0.9, joules=1.0),
            _point("b", rate=0.5, joules=2.0),  # dominated
        ]
        depth = append_energy_record(path, points, "2026-01-01T00:00:00")
        assert depth == 1
        (record,) = json.loads(path.read_text())
        assert record["timestamp"] == "2026-01-01T00:00:00"
        flags = {p["code"]: p["on_frontier"] for p in record["points"]}
        assert flags == {"a": True, "b": False}
        assert "dollars_per_kwh=" in record["energy_model"]

    def test_survives_corrupt_history(self, tmp_path):
        path = tmp_path / "BENCH_energy.json"
        path.write_text("{not json")
        depth = append_energy_record(
            path, [_point("a", 0.5, 1.0)], "2026-01-01T00:00:00"
        )
        assert depth == 1
        assert len(json.loads(path.read_text())) == 1

    def test_history_accumulates(self, tmp_path):
        path = tmp_path / "BENCH_energy.json"
        append_energy_record(path, [_point("a", 0.5, 1.0)], "t1")
        depth = append_energy_record(path, [_point("a", 0.6, 1.1)], "t2")
        assert depth == 2
        history = json.loads(path.read_text())
        assert [record["timestamp"] for record in history] == ["t1", "t2"]
