"""Adjacent-MBU study: arms, scoring, determinism, and recording."""

from __future__ import annotations

import json

import pytest

from repro.analysis.mbu import (
    MBU_ARMS,
    MbuConfig,
    MbuOutcome,
    append_mbu_record,
    mbu_study,
    run_mbu_trial,
)
from repro.errors import AnalysisError

SMALL = MbuConfig(
    epochs=10,
    regions=2,
    words_per_region=16,
    faults_per_epoch=2,
    reads_per_epoch=48,
    seed=3,
)


class TestConfigValidation:
    def test_epoch_bounds(self):
        with pytest.raises(AnalysisError):
            MbuConfig(epochs=0)

    def test_geometry_bounds(self):
        with pytest.raises(AnalysisError):
            MbuConfig(regions=0)

    def test_adjacent_fraction_bounds(self):
        with pytest.raises(AnalysisError):
            MbuConfig(adjacent_fraction=1.5)

    def test_unknown_arm_rejected(self):
        with pytest.raises(AnalysisError, match="unknown arm"):
            run_mbu_trial("static-parity", SMALL)


class TestTrial:
    def test_outcome_accounting(self):
        outcome = run_mbu_trial("static-secded-39-32", SMALL)
        assert outcome.faults_injected == (
            SMALL.epochs * SMALL.faults_per_epoch
        )
        assert 0 < outcome.faults_scored <= outcome.faults_injected
        assert (
            outcome.hw_corrected + outcome.heuristic_correct
            + outcome.silent_corruptions + outcome.unrecovered
            == outcome.faults_scored
        )
        assert 0.0 <= outcome.recovery_rate <= 1.0
        assert outcome.joules > 0
        assert outcome.switches == 0

    def test_deterministic_under_same_seed(self):
        assert run_mbu_trial("adaptive", SMALL) == run_mbu_trial(
            "adaptive", SMALL
        )

    def test_daec_corrects_bursts_in_hardware(self):
        outcome = run_mbu_trial("static-daec-41-32", SMALL)
        assert outcome.hw_corrected > 0
        assert outcome.regions_upgraded == SMALL.regions

    def test_adaptive_upgrades_under_pure_bursts(self):
        config = MbuConfig(
            epochs=16, regions=2, words_per_region=16,
            faults_per_epoch=3, reads_per_epoch=64, seed=0,
        )
        outcome = run_mbu_trial("adaptive", config)
        assert outcome.switches >= 1
        assert outcome.regions_upgraded >= 1

    def test_adaptive_stays_put_under_random_doubles(self):
        config = MbuConfig(
            epochs=16, regions=2, words_per_region=16,
            faults_per_epoch=3, reads_per_epoch=64,
            adjacent_fraction=0.0, seed=0,
        )
        outcome = run_mbu_trial("adaptive", config)
        assert outcome.switches == 0
        assert outcome.regions_upgraded == 0

    def test_adaptive_beats_static_secded_under_bursts(self):
        """The headline claim, pinned at a fixed seed."""
        config = MbuConfig(seed=0)
        static = run_mbu_trial("static-secded-39-32", config)
        adaptive = run_mbu_trial("adaptive", config)
        assert adaptive.recovery_rate > static.recovery_rate
        # ... within 2x the energy per handled fault.
        assert adaptive.joules_per_fault <= 2 * static.joules_per_fault


class TestStudy:
    def test_structure_and_means(self):
        study = mbu_study(
            profiles={"bursts": 1.0},
            trials=2,
            base_config=SMALL,
        )
        assert set(study) == {"bursts"}
        assert set(study["bursts"]) == set(MBU_ARMS)
        for metrics in study["bursts"].values():
            assert 0.0 <= metrics["recovery_rate"] <= 1.0
            assert metrics["joules_per_fault"] > 0

    def test_parallel_equals_serial(self):
        kwargs = dict(
            profiles={"bursts": 1.0, "rand": 0.0},
            trials=2,
            base_config=SMALL,
        )
        assert mbu_study(jobs=1, **kwargs) == mbu_study(jobs=2, **kwargs)

    def test_trials_bound(self):
        with pytest.raises(AnalysisError):
            mbu_study(trials=0)


class TestRecord:
    def test_append_creates_and_extends(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        study = {"bursts": {"adaptive": {"recovery_rate": 0.5}}}
        assert append_mbu_record(path, study, "2026-08-08T00:00:00", {
            "trials": 1,
        }) == 1
        assert append_mbu_record(path, study, "2026-08-08T00:01:00") == 2
        history = json.loads(path.read_text())
        assert len(history) == 2
        assert history[0]["study"] == "mbu"
        assert history[0]["trials"] == 1
        assert history[0]["profiles"] == study

    def test_tolerates_corrupt_file(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        path.write_text("{not json")
        assert append_mbu_record(path, {}, "t") == 1
