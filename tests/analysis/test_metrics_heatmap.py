"""Tests for sweep metrics and text rendering."""

from __future__ import annotations

import pytest

from repro.analysis.heatmap import (
    render_heatmap,
    render_histogram,
    render_series,
    render_table,
)
from repro.analysis.metrics import (
    BitRegion,
    PatternOutcome,
    arithmetic_mean,
    classify_positions,
    mean_series,
    rate_histogram,
    region_means,
)
from repro.errors import AnalysisError


def outcome(positions, rate):
    return PatternOutcome(
        index=0, positions=positions, success_rate=rate,
        mean_candidates=12.0, mean_valid=10.0,
    )


class TestRegionClassification:
    def test_opcode_pair_is_decode(self):
        assert classify_positions((0, 5)) is BitRegion.DECODE_FIELDS

    def test_funct_pair_is_decode(self):
        assert classify_positions((26, 31)) is BitRegion.DECODE_FIELDS

    def test_fmt_pair_is_decode(self):
        assert classify_positions((6, 10)) is BitRegion.DECODE_FIELDS

    def test_opcode_plus_funct_is_decode(self):
        assert classify_positions((3, 28)) is BitRegion.DECODE_FIELDS

    def test_immediate_pair_is_operand(self):
        assert classify_positions((20, 25)) is BitRegion.OPERAND_FIELDS

    def test_mixed(self):
        assert classify_positions((2, 20)) is BitRegion.MIXED

    def test_parity(self):
        assert classify_positions((5, 35)) is BitRegion.PARITY_BITS
        assert classify_positions((32, 38)) is BitRegion.PARITY_BITS

    def test_region_means_aggregates(self):
        outcomes = [
            outcome((0, 1), 0.9),
            outcome((0, 2), 0.7),
            outcome((15, 20), 0.1),
        ]
        means = region_means(outcomes)
        assert means[BitRegion.DECODE_FIELDS] == pytest.approx(0.8)
        assert means[BitRegion.OPERAND_FIELDS] == pytest.approx(0.1)
        assert BitRegion.PARITY_BITS not in means


class TestHistogramAndAggregates:
    def test_rate_histogram_fractions_sum_to_one(self):
        bins = rate_histogram([0.0, 0.25, 0.5, 0.75, 1.0], num_bins=4)
        assert sum(fraction for _, _, fraction in bins) == pytest.approx(1.0)

    def test_rate_one_lands_in_last_bin(self):
        bins = rate_histogram([1.0], num_bins=10)
        assert bins[-1][2] == 1.0

    def test_histogram_validates_inputs(self):
        with pytest.raises(AnalysisError):
            rate_histogram([], num_bins=4)
        with pytest.raises(AnalysisError):
            rate_histogram([1.5], num_bins=4)
        with pytest.raises(AnalysisError):
            rate_histogram([0.5], num_bins=0)

    def test_mean_series(self):
        assert mean_series([[1.0, 0.0], [0.0, 1.0]]) == [0.5, 0.5]

    def test_mean_series_validates(self):
        with pytest.raises(AnalysisError):
            mean_series([])
        with pytest.raises(AnalysisError):
            mean_series([[1.0], [1.0, 2.0]])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([0.2, 0.4]) == pytest.approx(0.3)
        with pytest.raises(AnalysisError):
            arithmetic_mean([])


class TestRendering:
    def test_heatmap_renders_scale(self):
        text = render_heatmap([[0, 1], [2, 3]], title="t")
        assert text.startswith("t")
        assert "light" in text

    def test_heatmap_rejects_all_zero(self):
        with pytest.raises(AnalysisError):
            render_heatmap([[0, 0]])

    def test_table_alignment_and_title(self):
        text = render_table(["a", "bb"], [[1, 2.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.5000" in text

    def test_table_validates_row_width(self):
        with pytest.raises(AnalysisError):
            render_table(["a"], [[1, 2]])
        with pytest.raises(AnalysisError):
            render_table([], [])

    def test_histogram_bars_scale(self):
        text = render_histogram([(0.0, 0.5, 0.75), (0.5, 1.0, 0.25)])
        lines = text.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_histogram_rejects_empty(self):
        with pytest.raises(AnalysisError):
            render_histogram([])

    def test_series_renders_extremes(self):
        # 60 points < default width: no down-sampling, extremes exact.
        text = render_series([0.1, 0.9, 0.5] * 20, title="s")
        assert "max=0.900" in text
        assert "min=0.100" in text
        assert "*" in text

    def test_series_downsamples_long_inputs(self):
        text = render_series([0.5] * 1000, width=50)
        assert "1000" not in text.splitlines()[1]  # bucketed, not raw

    def test_series_rejects_empty(self):
        with pytest.raises(AnalysisError):
            render_series([])
