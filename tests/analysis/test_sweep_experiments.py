"""Tests for the DUE sweep harness and the per-figure drivers.

These use reduced windows (a handful of instructions, subsets of the
741 patterns) so the suite stays fast; the full paper-scale runs live
in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    run_code_properties,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_isa_legality,
)
from repro.analysis.metrics import BitRegion
from repro.analysis.sweep import DueSweep, RecoveryStrategy
from repro.ecc.channel import double_bit_patterns
from repro.errors import AnalysisError
from repro.program.synth import synthesize_benchmark


@pytest.fixture(scope="module")
def small_images():
    return [
        synthesize_benchmark(name, length=256)
        for name in ("bzip2", "mcf")
    ]


@pytest.fixture(scope="module")
def subset_patterns(code):
    return double_bit_patterns(code.n)[::25]  # 30 of 741


class TestDueSweep:
    def test_outcomes_cover_requested_patterns(self, code, small_images, subset_patterns):
        sweep = DueSweep(
            code, RecoveryStrategy.FILTER_AND_RANK,
            num_instructions=10, patterns=subset_patterns,
        )
        result = sweep.run(small_images[0])
        assert len(result.outcomes) == len(subset_patterns)
        assert result.num_instructions == 10
        for outcome in result.outcomes:
            assert 0.0 <= outcome.success_rate <= 1.0
            assert 8 <= outcome.mean_candidates <= 15

    def test_strategy_ordering(self, code, small_images, subset_patterns):
        """filter+rank >= filter-only >= random on average (the paper's
        central comparison)."""
        means = {}
        for strategy in RecoveryStrategy:
            sweep = DueSweep(code, strategy, 10, patterns=subset_patterns)
            means[strategy] = sweep.run(small_images[0]).mean_success_rate
        assert (
            means[RecoveryStrategy.FILTER_AND_RANK]
            >= means[RecoveryStrategy.FILTER_ONLY]
            >= means[RecoveryStrategy.RANDOM_CANDIDATE]
        )

    def test_random_strategy_matches_reciprocal_candidates(
        self, code, small_images, subset_patterns
    ):
        sweep = DueSweep(
            code, RecoveryStrategy.RANDOM_CANDIDATE, 5, patterns=subset_patterns
        )
        result = sweep.run(small_images[0])
        for outcome in result.outcomes:
            assert outcome.success_rate == pytest.approx(
                1.0 / outcome.mean_candidates, rel=0.25
            )

    def test_run_many(self, code, small_images, subset_patterns):
        sweep = DueSweep(code, num_instructions=5, patterns=subset_patterns)
        results = sweep.run_many(small_images)
        assert [r.benchmark for r in results] == ["bzip2", "mcf"]

    def test_validation(self, code, subset_patterns):
        with pytest.raises(AnalysisError):
            DueSweep(code, num_instructions=0)
        sweep = DueSweep(code, num_instructions=5, patterns=subset_patterns)
        with pytest.raises(AnalysisError):
            sweep.run_many([])

    def test_pattern_width_checked(self, code):
        from repro.ecc.channel import pattern_from_positions

        with pytest.raises(AnalysisError):
            DueSweep(code, patterns=[pattern_from_positions((0, 1), 45)])

    def test_window_clamped_to_image(self, code, subset_patterns):
        image = synthesize_benchmark("mcf", length=64)
        sweep = DueSweep(code, num_instructions=1000, patterns=subset_patterns)
        assert sweep.run(image).num_instructions == 64


class TestFigureDrivers:
    def test_fig4_matches_paper(self, code):
        result = run_fig4(code)
        assert result.profile.num_patterns == 741
        assert result.profile.minimum == 8
        assert result.profile.maximum == 15
        assert "Fig. 4" in result.render()

    def test_fig5_filtering_reduces_candidates(self, code):
        image = synthesize_benchmark("mcf", length=128)
        result = run_fig5(code, image, num_instructions=6)
        assert result.candidates_message_independent
        assert result.mean_valid < result.mean_candidates
        assert 0.0 <= result.single_valid_fraction <= 1.0
        assert "mcf" in result.render()

    def test_fig6_strategies_ordered(self, code):
        image = synthesize_benchmark("bzip2", length=128)
        result = run_fig6(code, image, num_instructions=6)
        assert len(result.random_rates) == 741
        from repro.analysis.metrics import arithmetic_mean

        assert arithmetic_mean(result.filter_rates) >= arithmetic_mean(
            result.random_rates
        )
        # Best case dominates the average case pointwise (allowing for
        # float summation noise when all instructions tie).
        assert all(
            best >= avg - 1e-9
            for best, avg in zip(result.filter_best_rates, result.filter_rates)
        )
        assert "Fig. 6" in result.render()

    def test_fig7_power_law_and_lw(self, small_images):
        result = run_fig7(small_images)
        for name, (alpha, _) in result.fits.items():
            assert alpha < -0.8, name
        for name, lw in result.lw_frequencies().items():
            assert 0.1 <= lw <= 0.35, name
        assert "Fig. 7" in result.render()

    def test_fig8_shape(self, code, small_images):
        result = run_fig8(code, small_images, num_instructions=8)
        assert 0.1 <= result.overall_mean <= 0.6
        regions = result.region_summary()
        # The paper's qualitative ordering: decode fields recover far
        # better than operand fields.
        assert (
            regions[BitRegion.DECODE_FIELDS]
            > 2 * regions[BitRegion.OPERAND_FIELDS]
        )
        curve = result.mean_curve()
        assert len(curve) == 741
        assert max(curve) > 0.8  # near-certain recovery exists (99% claim)
        assert "Fig. 8" in result.render()

    def test_isa_legality_counts(self):
        result = run_isa_legality()
        assert (result.legal_opcodes, result.legal_functs, result.legal_fmts) == (
            41, 37, 3,
        )
        assert "41" in result.render()

    def test_code_properties(self, code):
        result = run_code_properties(code)
        assert result.distance_at_least_4
        assert not result.distance_at_least_5
        assert result.profile.mean == pytest.approx(12.0, abs=0.5)
        assert "(39,32)" in result.render()


class TestFig5Rendering:
    def test_render_includes_bucketed_heatmap(self, code):
        image = synthesize_benchmark("mcf", length=128)
        result = run_fig5(code, image, num_instructions=4)
        text = result.render()
        assert "valid messages, pattern (rows, bucketed)" in text
        assert "light=" in text  # the heatmap legend rendered

    def test_bucketing_preserves_column_count(self, code):
        image = synthesize_benchmark("mcf", length=128)
        result = run_fig5(code, image, num_instructions=4)
        grid = result._bucketed_valid(rows=10)
        assert all(len(row) == 4 for row in grid)
        assert len(grid) <= 11
