"""parallel_map must fail fast when a worker task raises.

The old failure path drained ``as_completed`` before surfacing the
exception, so a poisoned payload early in a long sweep still executed
the entire backlog (minutes of wasted work) before the caller saw the
error.  The fixed path cancels every not-yet-started future and
re-raises promptly; only tasks already running in a worker finish.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.analysis.parallel import parallel_map

JOBS = 2
SLEEPERS = 12
SLEEP_SECONDS = 0.4


def _poisonable_task(payload):
    """Module-level (picklable) task: poison raises, others leave a
    start marker before burning wall clock."""
    kind, marker_dir = payload
    if kind == "poison":
        raise ValueError("poisoned payload")
    marker = Path(marker_dir) / f"started-{os.getpid()}-{time.monotonic_ns()}"
    marker.touch()
    time.sleep(SLEEP_SECONDS)
    return kind


class TestFailFast:
    def test_poisoned_payload_raises_without_draining_pool(self, tmp_path):
        payloads = [("poison", str(tmp_path))] + [
            ("sleep", str(tmp_path)) for _ in range(SLEEPERS)
        ]
        started = time.perf_counter()
        with pytest.raises(ValueError, match="poisoned payload"):
            parallel_map(_poisonable_task, payloads, jobs=JOBS)
        elapsed = time.perf_counter() - started
        # Cancellation beats the backlog: only the tasks the workers had
        # already picked up when the poison landed ever started.  The
        # old drain-everything path started all SLEEPERS of them (and
        # took SLEEPERS/JOBS * SLEEP_SECONDS to return).
        markers = list(tmp_path.glob("started-*"))
        assert len(markers) < SLEEPERS, (
            f"all {SLEEPERS} queued tasks ran after the poison; "
            "outstanding futures were not cancelled"
        )
        drain_floor = (SLEEPERS / JOBS) * SLEEP_SECONDS
        assert elapsed < drain_floor, (
            f"parallel_map took {elapsed:.2f}s — it drained the backlog "
            f"instead of failing fast (full drain is >= {drain_floor:.2f}s)"
        )

    def test_serial_path_raises_immediately(self, tmp_path):
        payloads = [("poison", str(tmp_path)), ("sleep", str(tmp_path))]
        with pytest.raises(ValueError, match="poisoned payload"):
            parallel_map(_poisonable_task, payloads, jobs=1)
        assert list(tmp_path.glob("started-*")) == []
