"""Tests for the system-resilience survival simulation."""

from __future__ import annotations

import pytest

from repro.analysis.resilience import (
    ResilienceConfig,
    run_resilience_trial,
    survival_study,
)
from repro.errors import AnalysisError
from repro.program.synth import synthesize_benchmark


@pytest.fixture(scope="module")
def image():
    return synthesize_benchmark("bzip2", length=128)


class TestSingleTrial:
    def test_no_faults_means_full_survival(self, code, image):
        config = ResilienceConfig(
            epochs=5, reads_per_epoch=10, flip_probability=0.0, seed=1
        )
        outcome = run_resilience_trial(code, image, config)
        assert outcome.survived_epochs == 5
        assert not outcome.crashed
        assert outcome.dues == 0
        assert outcome.corrected_errors == 0

    def test_crash_policy_stops_at_first_due_read(self, code, image):
        config = ResilienceConfig(
            epochs=30, reads_per_epoch=64, flip_probability=2e-3,
            use_heuristic=False, seed=3,
        )
        outcome = run_resilience_trial(code, image, config)
        assert outcome.crashed
        assert outcome.survived_epochs < 30
        assert outcome.heuristic_recoveries == 0

    def test_heuristic_policy_survives_longer(self, code, image):
        crash_config = ResilienceConfig(
            epochs=30, reads_per_epoch=64, flip_probability=2e-3,
            use_heuristic=False, seed=3,
        )
        heuristic_config = ResilienceConfig(
            epochs=30, reads_per_epoch=64, flip_probability=2e-3,
            use_heuristic=True, seed=3,
        )
        crash = run_resilience_trial(code, image, crash_config)
        heuristic = run_resilience_trial(code, image, heuristic_config)
        assert heuristic.survived_epochs >= crash.survived_epochs
        assert not heuristic.crashed
        assert heuristic.heuristic_recoveries > 0
        assert (
            heuristic.correct_recoveries + heuristic.silent_corruptions
            == heuristic.heuristic_recoveries
        )

    def test_deterministic_for_fixed_seed(self, code, image):
        config = ResilienceConfig(
            epochs=10, reads_per_epoch=32, flip_probability=1e-3, seed=9
        )
        first = run_resilience_trial(code, image, config)
        second = run_resilience_trial(code, image, config)
        assert first == second

    def test_scrubbing_pass_count(self, code, image):
        config = ResilienceConfig(
            epochs=10, reads_per_epoch=4, flip_probability=0.0,
            scrub_interval=3, seed=0,
        )
        outcome = run_resilience_trial(code, image, config)
        assert outcome.scrub_passes == 3  # epochs 3, 6, 9

    def test_config_validation(self, code, image):
        with pytest.raises(AnalysisError):
            run_resilience_trial(code, image, ResilienceConfig(epochs=0))


class TestSurvivalStudy:
    def test_study_structure_and_ordering(self, code, image):
        study = survival_study(
            code,
            image,
            trials=2,
            base_config=ResilienceConfig(
                epochs=15, reads_per_epoch=48, flip_probability=1.5e-3
            ),
        )
        assert set(study) == {
            "crash, no scrub", "crash + scrubbing",
            "SWD-ECC, no scrub", "SWD-ECC + scrubbing",
        }
        for metrics in study.values():
            assert 0.0 <= metrics["completion_rate"] <= 1.0
        assert (
            study["SWD-ECC, no scrub"]["mean_survived_epochs"]
            >= study["crash, no scrub"]["mean_survived_epochs"]
        )

    def test_trials_validated(self, code, image):
        with pytest.raises(AnalysisError):
            survival_study(code, image, trials=0)
