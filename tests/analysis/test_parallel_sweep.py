"""Parallel sweeps: bit-identical results, correctly aggregated metrics.

The acceleration contract (see ``docs/performance.md``) has two halves:

- results: a ``jobs > 1`` sweep — and the memoized/vectorized serial
  path itself — must be *bit-identical* to the uncached per-word
  reference implementation;
- observability: worker-process metric deltas must fold back into the
  parent registry so counter totals match a serial run.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_fig6
from repro.analysis.parallel import chunk_evenly, parallel_map
from repro.analysis.resilience import ResilienceConfig, survival_study
from repro.analysis.sweep import DueSweep, RecoveryStrategy
from repro.ecc.channel import double_bit_patterns
from repro.errors import AnalysisError
from repro.obs import metrics as obs_metrics

JOBS = 4
WINDOW = 4
NUM_PATTERNS = 48  # a prefix of the 741: enough syndrome variety, fast


@pytest.fixture(scope="module")
def patterns(code):
    return tuple(double_bit_patterns(code.n))[:NUM_PATTERNS]


def _run(code, image, patterns, *, cache=True, jobs=1):
    sweep = DueSweep(
        code,
        RecoveryStrategy.FILTER_AND_RANK,
        num_instructions=WINDOW,
        patterns=patterns,
        cache=cache,
    )
    return sweep.run(image, jobs=jobs)


class TestChunkEvenly:
    def test_chunks_concatenate_to_input(self):
        items = list(range(11))
        chunks = chunk_evenly(items, 3)
        assert [x for chunk in chunks for x in chunk] == items
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1

    def test_more_chunks_than_items(self):
        assert chunk_evenly([1, 2], 5) == [(1,), (2,)]
        assert chunk_evenly([], 3) == []

    def test_rejects_nonpositive(self):
        with pytest.raises(AnalysisError):
            chunk_evenly([1], 0)


class TestBitIdentical:
    def test_parallel_equals_serial(self, code, mcf_image, patterns):
        serial = _run(code, mcf_image, patterns, jobs=1)
        parallel = _run(code, mcf_image, patterns, jobs=JOBS)
        assert parallel == serial  # outcomes, ordering, window, name

    def test_memoized_fast_path_equals_uncached_reference(
        self, code, mcf_image, patterns
    ):
        fast = _run(code, mcf_image, patterns, cache=True)
        reference = _run(code, mcf_image, patterns, cache=False)
        assert fast.outcomes == reference.outcomes

    def test_run_many_parallel_equals_serial(
        self, code, mcf_image, bzip2_image, patterns
    ):
        sweep = DueSweep(
            code,
            RecoveryStrategy.FILTER_AND_RANK,
            num_instructions=WINDOW,
            patterns=patterns,
        )
        serial = sweep.run_many([mcf_image, bzip2_image])
        parallel = sweep.run_many([mcf_image, bzip2_image], jobs=2)
        assert parallel == serial

    def test_fig6_parallel_equals_serial(self, code, bzip2_image):
        serial = run_fig6(code, bzip2_image, num_instructions=3)
        parallel = run_fig6(code, bzip2_image, num_instructions=3, jobs=3)
        assert parallel == serial

    def test_survival_study_parallel_equals_serial(self, code, mcf_image):
        base = ResilienceConfig(epochs=4, reads_per_epoch=16)
        serial = survival_study(code, mcf_image, trials=2, base_config=base)
        parallel = survival_study(
            code, mcf_image, trials=2, base_config=base, jobs=4
        )
        assert parallel == serial

    def test_rejects_nonpositive_jobs(self, code, mcf_image, patterns):
        sweep = DueSweep(
            code, RecoveryStrategy.FILTER_AND_RANK,
            num_instructions=WINDOW, patterns=patterns,
        )
        with pytest.raises(AnalysisError):
            sweep.run(mcf_image, jobs=0)


class TestWorkerMetricsAggregation:
    def _sweep_with_registry(self, code, image, patterns, jobs):
        registry = obs_metrics.MetricsRegistry()
        saved = obs_metrics.set_registry(registry)
        try:
            _run(code, image, patterns, jobs=jobs)
        finally:
            obs_metrics.set_registry(saved)
        return registry

    def test_parallel_recovery_counter_equals_serial(
        self, code, mcf_image, patterns
    ):
        serial = self._sweep_with_registry(code, mcf_image, patterns, 1)
        parallel = self._sweep_with_registry(code, mcf_image, patterns, JOBS)
        expected = len(patterns) * WINDOW
        assert serial.counter("swdecc.recoveries").value == expected
        assert parallel.counter("swdecc.recoveries").value == expected

    def test_cache_counter_totals_survive_aggregation(
        self, code, mcf_image, patterns
    ):
        parallel = self._sweep_with_registry(code, mcf_image, patterns, JOBS)
        # Every pattern asks the enumerator for its syndrome's pair set
        # exactly once, in whichever worker swept it.
        candidate_lookups = (
            parallel.counter("candidates.cache_hits").value
            + parallel.counter("candidates.cache_misses").value
        )
        assert candidate_lookups == len(patterns)
        # Filter and ranker caches see every per-message query; the
        # hit/miss split depends on chunking but the total does not.
        serial = self._sweep_with_registry(code, mcf_image, patterns, 1)
        for name in ("filter", "ranker"):
            serial_total = (
                serial.counter(f"{name}.cache_hits").value
                + serial.counter(f"{name}.cache_misses").value
            )
            parallel_total = (
                parallel.counter(f"{name}.cache_hits").value
                + parallel.counter(f"{name}.cache_misses").value
            )
            assert parallel_total == serial_total, name

    def test_worker_histograms_merge_into_parent(
        self, code, mcf_image, patterns
    ):
        parallel = self._sweep_with_registry(code, mcf_image, patterns, JOBS)
        histogram = parallel.histogram("swdecc.candidates")
        assert histogram.count == len(patterns) * WINDOW

    def test_no_per_image_gauge_is_minted(self, code, mcf_image, patterns):
        registry = self._sweep_with_registry(code, mcf_image, patterns, JOBS)
        snapshot = registry.as_dict()
        assert f"sweep.wall_seconds[{mcf_image.name}]" not in snapshot
        assert registry.gauge("sweep.last_wall_seconds").value > 0
        assert registry.info("sweep.last_benchmark").value == mcf_image.name


class TestParallelMap:
    def test_serial_fallback_preserves_order(self):
        assert parallel_map(_double, [1, 2, 3], jobs=1) == [2, 4, 6]

    def test_parallel_preserves_order(self):
        assert parallel_map(_double, list(range(8)), jobs=4) == [
            0, 2, 4, 6, 8, 10, 12, 14
        ]

    def test_worker_counters_fold_into_parent(self):
        registry = obs_metrics.MetricsRegistry()
        saved = obs_metrics.set_registry(registry)
        try:
            parallel_map(_count_one, list(range(6)), jobs=3)
            assert registry.counter("parallel.test_units").value == 6
        finally:
            obs_metrics.set_registry(saved)

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(AnalysisError):
            parallel_map(_double, [1], jobs=0)


def _double(value):
    return value * 2


def _count_one(value):
    obs_metrics.get_registry().counter("parallel.test_units").inc()
    return value


class TestOnResult:
    def test_serial_fires_in_order_with_wall_seconds(self):
        calls = []
        parallel_map(
            _double, [5, 6, 7], jobs=1,
            on_result=lambda i, r, w: calls.append((i, r, w)),
        )
        assert [(i, r) for i, r, _ in calls] == [(0, 10), (1, 12), (2, 14)]
        assert all(w >= 0 for _, _, w in calls)

    def test_parallel_covers_every_payload(self):
        calls = []
        results = parallel_map(
            _double, list(range(8)), jobs=4,
            on_result=lambda i, r, w: calls.append((i, r)),
        )
        # completion order is nondeterministic; coverage is not
        assert sorted(calls) == [(i, 2 * i) for i in range(8)]
        assert results == [2 * i for i in range(8)]

    def test_callback_result_matches_payload_index(self):
        seen = {}
        parallel_map(
            _double, [3, 1, 4, 1, 5], jobs=2,
            on_result=lambda i, r, w: seen.setdefault(i, r),
        )
        assert seen == {0: 6, 1: 2, 2: 8, 3: 2, 4: 10}


class TestWorkerEventDigests:
    def _sweep_with_event_log(self, code, image, patterns, jobs):
        from repro.obs import events as obs_events

        log = obs_events.EventLog(capacity=4096)
        saved = obs_events.set_event_log(log)
        registry = obs_metrics.MetricsRegistry()
        saved_registry = obs_metrics.set_registry(registry)
        try:
            _run(code, image, patterns, jobs=jobs, cache=False)
        finally:
            obs_events.set_event_log(saved)
            obs_metrics.set_registry(saved_registry)
        return log

    def test_parallel_digest_matches_serial_events(
        self, code, mcf_image, patterns
    ):
        few = patterns[:8]
        serial = self._sweep_with_event_log(code, mcf_image, few, 1)
        parallel = self._sweep_with_event_log(code, mcf_image, few, 2)
        # Worker rings stay remote, but the absorbed digests must
        # account for exactly the events a serial run records locally.
        assert len(parallel.events()) == 0
        digest = parallel.absorbed_digest
        assert digest.count == len(serial.events())
        assert digest.count == len(few) * WINDOW
        assert digest.fallbacks == sum(
            1 for e in serial.events() if e.filter_fell_back
        )

    def test_serial_run_absorbs_nothing(self, code, mcf_image, patterns):
        log = self._sweep_with_event_log(code, mcf_image, patterns[:8], 1)
        assert log.absorbed_digest.count == 0
        assert len(log.events()) == 8 * WINDOW


class TestProgressDuringSweeps:
    def test_sweep_advances_progress_gauges(self, code, mcf_image, patterns):
        from repro.obs.progress import SweepProgress

        registry = obs_metrics.MetricsRegistry()
        saved = obs_metrics.set_registry(registry)
        try:
            progress = SweepProgress(registry=registry)
            sweep = DueSweep(
                code, RecoveryStrategy.FILTER_AND_RANK,
                num_instructions=WINDOW, patterns=patterns,
            )
            sweep.run(mcf_image, jobs=JOBS, progress=progress)
        finally:
            obs_metrics.set_registry(saved)
        assert progress.done == len(patterns)
        assert progress.total == len(patterns)
        done = registry.get("sweep.progress.patterns_done")
        assert done is not None and done.value == len(patterns)
        chunks = registry.get("sweep.chunks_completed")
        assert chunks is not None and chunks.value == JOBS

    def test_workers_never_clobber_parent_progress(
        self, code, mcf_image, patterns
    ):
        # Forked workers inherit the progress gauges zeroed; their
        # snapshots must not overwrite the parent's live values when
        # merged (gauges are last-wins).
        registry = obs_metrics.MetricsRegistry()
        saved = obs_metrics.set_registry(registry)
        try:
            from repro.obs.progress import SweepProgress

            progress = SweepProgress(registry=registry)
            sweep = DueSweep(
                code, RecoveryStrategy.FILTER_AND_RANK,
                num_instructions=WINDOW, patterns=patterns,
            )
            sweep.run(mcf_image, jobs=JOBS, progress=progress)
            assert registry.get(
                "sweep.progress.patterns_done"
            ).value == len(patterns)
            assert registry.get(
                "sweep.progress.total_patterns"
            ).value == len(patterns)
        finally:
            obs_metrics.set_registry(saved)

    def test_progress_does_not_change_outcomes(
        self, code, mcf_image, patterns
    ):
        from repro.obs.progress import SweepProgress

        plain = _run(code, mcf_image, patterns, jobs=1)
        sweep = DueSweep(
            code, RecoveryStrategy.FILTER_AND_RANK,
            num_instructions=WINDOW, patterns=patterns,
        )
        progress = SweepProgress(registry=obs_metrics.MetricsRegistry())
        tracked = sweep.run(mcf_image, jobs=JOBS, progress=progress)
        assert tracked == plain
