"""Parallel sweeps: bit-identical results, correctly aggregated metrics.

The acceleration contract (see ``docs/performance.md``) has two halves:

- results: a ``jobs > 1`` sweep — and the memoized/vectorized serial
  path itself — must be *bit-identical* to the uncached per-word
  reference implementation;
- observability: worker-process metric deltas must fold back into the
  parent registry so counter totals match a serial run.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_fig6
from repro.analysis.parallel import chunk_evenly, parallel_map
from repro.analysis.resilience import ResilienceConfig, survival_study
from repro.analysis.sweep import DueSweep, RecoveryStrategy
from repro.ecc.channel import double_bit_patterns
from repro.errors import AnalysisError
from repro.obs import metrics as obs_metrics

JOBS = 4
WINDOW = 4
NUM_PATTERNS = 48  # a prefix of the 741: enough syndrome variety, fast


@pytest.fixture(scope="module")
def patterns(code):
    return tuple(double_bit_patterns(code.n))[:NUM_PATTERNS]


def _run(code, image, patterns, *, cache=True, jobs=1):
    sweep = DueSweep(
        code,
        RecoveryStrategy.FILTER_AND_RANK,
        num_instructions=WINDOW,
        patterns=patterns,
        cache=cache,
    )
    return sweep.run(image, jobs=jobs)


class TestChunkEvenly:
    def test_chunks_concatenate_to_input(self):
        items = list(range(11))
        chunks = chunk_evenly(items, 3)
        assert [x for chunk in chunks for x in chunk] == items
        assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1

    def test_more_chunks_than_items(self):
        assert chunk_evenly([1, 2], 5) == [(1,), (2,)]
        assert chunk_evenly([], 3) == []

    def test_rejects_nonpositive(self):
        with pytest.raises(AnalysisError):
            chunk_evenly([1], 0)


class TestBitIdentical:
    def test_parallel_equals_serial(self, code, mcf_image, patterns):
        serial = _run(code, mcf_image, patterns, jobs=1)
        parallel = _run(code, mcf_image, patterns, jobs=JOBS)
        assert parallel == serial  # outcomes, ordering, window, name

    def test_memoized_fast_path_equals_uncached_reference(
        self, code, mcf_image, patterns
    ):
        fast = _run(code, mcf_image, patterns, cache=True)
        reference = _run(code, mcf_image, patterns, cache=False)
        assert fast.outcomes == reference.outcomes

    def test_run_many_parallel_equals_serial(
        self, code, mcf_image, bzip2_image, patterns
    ):
        sweep = DueSweep(
            code,
            RecoveryStrategy.FILTER_AND_RANK,
            num_instructions=WINDOW,
            patterns=patterns,
        )
        serial = sweep.run_many([mcf_image, bzip2_image])
        parallel = sweep.run_many([mcf_image, bzip2_image], jobs=2)
        assert parallel == serial

    def test_fig6_parallel_equals_serial(self, code, bzip2_image):
        serial = run_fig6(code, bzip2_image, num_instructions=3)
        parallel = run_fig6(code, bzip2_image, num_instructions=3, jobs=3)
        assert parallel == serial

    def test_survival_study_parallel_equals_serial(self, code, mcf_image):
        base = ResilienceConfig(epochs=4, reads_per_epoch=16)
        serial = survival_study(code, mcf_image, trials=2, base_config=base)
        parallel = survival_study(
            code, mcf_image, trials=2, base_config=base, jobs=4
        )
        assert parallel == serial

    def test_rejects_nonpositive_jobs(self, code, mcf_image, patterns):
        sweep = DueSweep(
            code, RecoveryStrategy.FILTER_AND_RANK,
            num_instructions=WINDOW, patterns=patterns,
        )
        with pytest.raises(AnalysisError):
            sweep.run(mcf_image, jobs=0)


class TestWorkerMetricsAggregation:
    def _sweep_with_registry(self, code, image, patterns, jobs):
        registry = obs_metrics.MetricsRegistry()
        saved = obs_metrics.set_registry(registry)
        try:
            _run(code, image, patterns, jobs=jobs)
        finally:
            obs_metrics.set_registry(saved)
        return registry

    def test_parallel_recovery_counter_equals_serial(
        self, code, mcf_image, patterns
    ):
        serial = self._sweep_with_registry(code, mcf_image, patterns, 1)
        parallel = self._sweep_with_registry(code, mcf_image, patterns, JOBS)
        expected = len(patterns) * WINDOW
        assert serial.counter("swdecc.recoveries").value == expected
        assert parallel.counter("swdecc.recoveries").value == expected

    def test_cache_counter_totals_survive_aggregation(
        self, code, mcf_image, patterns
    ):
        parallel = self._sweep_with_registry(code, mcf_image, patterns, JOBS)
        # Every pattern asks the enumerator for its syndrome's pair set
        # exactly once, in whichever worker swept it.
        candidate_lookups = (
            parallel.counter("candidates.cache_hits").value
            + parallel.counter("candidates.cache_misses").value
        )
        assert candidate_lookups == len(patterns)
        # Filter and ranker caches see every per-message query; the
        # hit/miss split depends on chunking but the total does not.
        serial = self._sweep_with_registry(code, mcf_image, patterns, 1)
        for name in ("filter", "ranker"):
            serial_total = (
                serial.counter(f"{name}.cache_hits").value
                + serial.counter(f"{name}.cache_misses").value
            )
            parallel_total = (
                parallel.counter(f"{name}.cache_hits").value
                + parallel.counter(f"{name}.cache_misses").value
            )
            assert parallel_total == serial_total, name

    def test_worker_histograms_merge_into_parent(
        self, code, mcf_image, patterns
    ):
        parallel = self._sweep_with_registry(code, mcf_image, patterns, JOBS)
        histogram = parallel.histogram("swdecc.candidates")
        assert histogram.count == len(patterns) * WINDOW

    def test_no_per_image_gauge_is_minted(self, code, mcf_image, patterns):
        registry = self._sweep_with_registry(code, mcf_image, patterns, JOBS)
        snapshot = registry.as_dict()
        assert f"sweep.wall_seconds[{mcf_image.name}]" not in snapshot
        assert registry.gauge("sweep.last_wall_seconds").value > 0
        assert registry.info("sweep.last_benchmark").value == mcf_image.name


class TestParallelMap:
    def test_serial_fallback_preserves_order(self):
        assert parallel_map(_double, [1, 2, 3], jobs=1) == [2, 4, 6]

    def test_parallel_preserves_order(self):
        assert parallel_map(_double, list(range(8)), jobs=4) == [
            0, 2, 4, 6, 8, 10, 12, 14
        ]

    def test_worker_counters_fold_into_parent(self):
        registry = obs_metrics.MetricsRegistry()
        saved = obs_metrics.set_registry(registry)
        try:
            parallel_map(_count_one, list(range(6)), jobs=3)
            assert registry.counter("parallel.test_units").value == 6
        finally:
            obs_metrics.set_registry(saved)

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(AnalysisError):
            parallel_map(_double, [1], jobs=0)


def _double(value):
    return value * 2


def _count_one(value):
    obs_metrics.get_registry().counter("parallel.test_units").inc()
    return value
