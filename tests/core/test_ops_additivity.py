"""Property: op-level energy counters are exactly additive.

The energy model prices recoveries by multiplying op counters by
per-op joule constants, so the counters must be *accounting-grade*:
the same words must charge the same ops no matter how they are
grouped.  Hypothesis drives random 2-bit-DUE word lists and asserts

- ``recover_batch(words)`` charges bit-identical op counts to serial
  ``recover()`` calls on an identically configured fresh engine, and
- batch boundaries are invisible: one ``recover_batch(a + b)`` call
  charges exactly what ``recover_batch(a)`` then ``recover_batch(b)``
  charge on another fresh engine (caches persist across calls, so
  the split may not be measured with fresh engines per part).

Each measurement swaps in an empty process registry *before*
constructing the engine — codes cache their counter references at
construction time, so the swap isolates every example completely.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.swdecc import SwdEcc, TieBreak
from repro.ecc import canonical_secded_39_32
from repro.obs import metrics as obs_metrics
from repro.obs.energy import op_counts

_WORD_CODE = canonical_secded_39_32()


def _measure(drive, precompile=False):
    """Run *drive(engine)* against a fresh registry + engine; return
    the op-counter totals it charged."""
    registry = obs_metrics.MetricsRegistry()
    previous = obs_metrics.set_registry(registry)
    try:
        engine = SwdEcc(
            canonical_secded_39_32(),
            tie_break=TieBreak.FIRST,
            rng=random.Random(0),
            cache=True,
            precompile=precompile,
        )
        drive(engine)
        return op_counts(registry)
    finally:
        obs_metrics.set_registry(previous)


def _due_words(specs):
    """Materialize (message, bit_a, bit_b) specs as 2-bit-DUE words."""
    words = []
    for message, bit_a, bit_b in specs:
        received = _WORD_CODE.encode(message)
        received ^= 1 << bit_a
        received ^= 1 << (bit_b if bit_b != bit_a else (bit_a + 1) % _WORD_CODE.n)
        words.append(received)
    return words


_SPEC = st.tuples(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=_WORD_CODE.n - 1),
    st.integers(min_value=0, max_value=_WORD_CODE.n - 1),
)


@settings(max_examples=25, deadline=None)
@given(specs=st.lists(_SPEC, min_size=1, max_size=8))
def test_batch_charges_same_ops_as_serial(specs):
    words = _due_words(specs)
    batched = _measure(lambda engine: engine.recover_batch(words))
    serial = _measure(
        lambda engine: [engine.recover(word) for word in words]
    )
    assert batched == serial
    assert any(value > 0 for value in batched.values())


@settings(max_examples=25, deadline=None)
@given(
    specs=st.lists(_SPEC, min_size=2, max_size=8),
    split=st.integers(min_value=1, max_value=7),
)
def test_batch_boundaries_do_not_change_ops(specs, split):
    words = _due_words(specs)
    split = min(split, len(words) - 1)
    whole = _measure(lambda engine: engine.recover_batch(words))

    def in_two(engine):
        engine.recover_batch(words[:split])
        engine.recover_batch(words[split:])

    assert _measure(in_two) == whole


@settings(max_examples=25, deadline=None)
@given(specs=st.lists(_SPEC, min_size=1, max_size=8))
def test_precompiled_batch_charges_same_ops_as_serial(specs):
    """The decode-table fast path keeps the same grouping invariance.

    Decision rows are cached per *context identity*, so the comparison
    pins one shared context — bare ``recover(word)`` calls each resolve
    a fresh context, which legitimately rebuilds rows (and recharges
    their filter/ranker evals) rather than being a grouping effect.
    """
    from repro.core.sideinfo import RecoveryContext

    words = _due_words(specs)
    context = RecoveryContext()
    batched = _measure(
        lambda engine: engine.recover_batch(words, context), precompile=True
    )
    serial = _measure(
        lambda engine: [engine.recover(word, context) for word in words],
        precompile=True,
    )
    assert batched == serial
    assert any(value > 0 for value in batched.values())


@settings(max_examples=25, deadline=None)
@given(specs=st.lists(_SPEC, min_size=1, max_size=8))
def test_precompiled_charges_reference_ops_minus_amortized_walk(specs):
    """Build is a one-time charge; serving matches the reference on
    every op except XOR, where the table legitimately charges *less*
    because the pair-mask walk was amortized into the build."""
    words = _due_words(specs)
    build_only = _measure(lambda engine: None, precompile=True)
    assert build_only["ops.xor"] > 0
    assert build_only["ops.candidate_enumerations"] == 0
    assert build_only["ops.filter_evals"] == 0
    assert build_only["ops.ranker_evals"] == 0

    precompiled = _measure(
        lambda engine: [engine.recover(word) for word in words],
        precompile=True,
    )
    reference = _measure(
        lambda engine: [engine.recover(word) for word in words]
    )
    served = {
        op: total - build_only.get(op, 0)
        for op, total in precompiled.items()
    }
    assert served["ops.xor"] <= reference["ops.xor"]
    del served["ops.xor"], reference["ops.xor"]
    assert served == reference
