"""Tests for candidate filters and rankers (the side-information layer)."""

from __future__ import annotations

import pytest

from repro.core.filters import (
    FilterChain,
    InstructionLegalityFilter,
    IntegerMagnitudeFilter,
    PointerRangeFilter,
)
from repro.core.rankers import (
    BitwiseSimilarityRanker,
    FrequencyRanker,
    MagnitudeSimilarityRanker,
    UniformRanker,
)
from repro.core.sideinfo import MemoryKind, RecoveryContext
from repro.isa.encoder import encode
from repro.program.stats import FrequencyTable

LW = encode("lw", rt=8, rs=29, imm=4)
SW = encode("sw", rt=8, rs=29, imm=4)
ILLEGAL = 0xFC000000


class TestInstructionLegalityFilter:
    def test_removes_illegal_messages(self):
        result = InstructionLegalityFilter().apply(
            [LW, ILLEGAL, SW], RecoveryContext()
        )
        assert result == (LW, SW)

    def test_preserves_order(self):
        result = InstructionLegalityFilter().apply([SW, LW], RecoveryContext())
        assert result == (SW, LW)

    def test_can_empty_the_list(self):
        assert InstructionLegalityFilter().apply([ILLEGAL], RecoveryContext()) == ()


class TestDataMemoryFilters:
    def test_magnitude_filter(self):
        context = RecoveryContext.for_data(value_bound=1000)
        result = IntegerMagnitudeFilter().apply([5, 999, 1000, 70000], context)
        assert result == (5, 999)

    def test_magnitude_filter_noop_without_bound(self):
        context = RecoveryContext.for_data()
        assert IntegerMagnitudeFilter().apply([1, 2**31], context) == (1, 2**31)

    def test_pointer_filter(self):
        context = RecoveryContext.for_data(pointer_range=(0x400000, 0x500000))
        result = PointerRangeFilter().apply(
            [0x3FFFFF, 0x400000, 0x4FFFFC, 0x500000], context
        )
        assert result == (0x400000, 0x4FFFFC)

    def test_pointer_filter_noop_without_range(self):
        context = RecoveryContext.for_data()
        assert PointerRangeFilter().apply([1, 2], context) == (1, 2)


class TestFilterChain:
    def test_composes_in_order(self):
        context = RecoveryContext.for_data(
            value_bound=0x500000, pointer_range=(0x400000, 0x500000)
        )
        chain = FilterChain([IntegerMagnitudeFilter(), PointerRangeFilter()])
        assert chain.apply([0x100, 0x450000, 0x600000], context) == (0x450000,)

    def test_empty_chain_is_identity(self):
        chain = FilterChain([])
        assert chain.apply([3, 2, 1], RecoveryContext()) == (3, 2, 1)
        assert chain.name == "identity"

    def test_name_concatenates(self):
        chain = FilterChain([InstructionLegalityFilter(), PointerRangeFilter()])
        assert chain.name == "instruction-legality+pointer-range"


class TestFrequencyRanker:
    def test_scores_by_mnemonic_frequency(self):
        table = FrequencyTable.from_counts("t", {"lw": 8, "sw": 2})
        context = RecoveryContext.for_instructions(table)
        ranker = FrequencyRanker()
        assert ranker.score(LW, context) == 0.8
        assert ranker.score(SW, context) == 0.2

    def test_illegal_messages_score_zero(self):
        table = FrequencyTable.from_counts("t", {"lw": 1})
        context = RecoveryContext.for_instructions(table)
        assert FrequencyRanker().score(ILLEGAL, context) == 0.0

    def test_unknown_mnemonic_scores_zero(self):
        table = FrequencyTable.from_counts("t", {"lw": 1})
        context = RecoveryContext.for_instructions(table)
        assert FrequencyRanker().score(SW, context) == 0.0

    def test_degrades_to_flat_without_table(self):
        context = RecoveryContext(kind=MemoryKind.INSTRUCTION)
        assert FrequencyRanker().score(LW, context) == 1.0


class TestDataRankers:
    def test_uniform_always_one(self):
        assert UniformRanker().score(12345, RecoveryContext()) == 1.0

    def test_magnitude_similarity_prefers_close_values(self):
        context = RecoveryContext.for_data(neighborhood=(100, 110))
        ranker = MagnitudeSimilarityRanker()
        assert ranker.score(105, context) > ranker.score(500, context)
        assert ranker.score(100, context) == 0.0

    def test_magnitude_similarity_flat_without_neighborhood(self):
        assert MagnitudeSimilarityRanker().score(7, RecoveryContext()) == 0.0

    def test_bitwise_similarity_prefers_matching_bits(self):
        context = RecoveryContext.for_data(
            neighborhood=(0xFF00FF00, 0xFF00FF04)
        )
        ranker = BitwiseSimilarityRanker()
        assert ranker.score(0xFF00FF02, context) > ranker.score(0x00FF00FF, context)

    def test_bitwise_similarity_exact_match_scores_best(self):
        context = RecoveryContext.for_data(neighborhood=(0xABCD, 0xABCD))
        assert BitwiseSimilarityRanker().score(0xABCD, context) == 0.0


class TestRecoveryContext:
    def test_instruction_factory(self):
        table = FrequencyTable.from_counts("t", {"lw": 1})
        context = RecoveryContext.for_instructions(table, address=0x400000)
        assert context.kind is MemoryKind.INSTRUCTION
        assert context.address == 0x400000

    def test_data_factory(self):
        context = RecoveryContext.for_data(
            neighborhood=[1, 2], value_bound=10, pointer_range=(0, 100)
        )
        assert context.kind is MemoryKind.DATA
        assert context.neighborhood == (1, 2)

    def test_default_context_is_unknown(self):
        assert RecoveryContext().kind is MemoryKind.UNKNOWN


class TestInstructionPairFilterAndRanker:
    def _pair(self, high, low):
        return (high << 32) | low

    def test_pair_filter_requires_both_halves_legal(self):
        from repro.core.filters import InstructionPairLegalityFilter

        context = RecoveryContext()
        both = self._pair(LW, SW)
        high_bad = self._pair(ILLEGAL, SW)
        low_bad = self._pair(LW, ILLEGAL)
        result = InstructionPairLegalityFilter().apply(
            [both, high_bad, low_bad], context
        )
        assert result == (both,)

    def test_pair_ranker_multiplies_frequencies(self):
        from repro.core.rankers import PairFrequencyRanker

        table = FrequencyTable.from_counts("t", {"lw": 8, "sw": 2})
        context = RecoveryContext.for_instructions(table)
        ranker = PairFrequencyRanker()
        assert ranker.score(self._pair(LW, LW), context) == pytest.approx(0.64)
        assert ranker.score(self._pair(LW, SW), context) == pytest.approx(0.16)
        assert ranker.score(self._pair(SW, SW), context) == pytest.approx(0.04)

    def test_pair_ranker_zero_for_illegal_half(self):
        from repro.core.rankers import PairFrequencyRanker

        table = FrequencyTable.from_counts("t", {"lw": 1})
        context = RecoveryContext.for_instructions(table)
        assert PairFrequencyRanker().score(self._pair(ILLEGAL, LW), context) == 0.0

    def test_pair_ranker_flat_without_table(self):
        from repro.core.rankers import PairFrequencyRanker

        assert PairFrequencyRanker().score(
            self._pair(LW, SW), RecoveryContext()
        ) == 1.0

    def test_end_to_end_pair_recovery(self):
        import random

        from repro.core.filters import InstructionPairLegalityFilter
        from repro.core.rankers import PairFrequencyRanker
        from repro.core.swdecc import SwdEcc
        from repro.ecc.hsiao import hsiao_72_64

        code = hsiao_72_64()
        table = FrequencyTable.from_counts("t", {"lw": 10, "sw": 5, "addu": 3})
        context = RecoveryContext.for_instructions(table)
        engine = SwdEcc(
            code,
            filters=(InstructionPairLegalityFilter(),),
            ranker=PairFrequencyRanker(),
            rng=random.Random(0),
        )
        message = self._pair(LW, SW)
        received = code.encode(message) ^ (1 << 71) ^ (1 << 40)
        result = engine.recover(received, context)
        assert message in result.candidate_messages
        assert all(
            0 <= m <= (1 << 64) - 1 for m in result.candidate_messages
        )
