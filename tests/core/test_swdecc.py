"""Tests for the SWD-ECC engine: enumerate -> filter -> rank -> choose."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filters import InstructionLegalityFilter
from repro.core.rankers import UniformRanker
from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import SwdEcc, TieBreak, success_probability
from repro.ecc.channel import double_bit_patterns
from repro.errors import DecodingError
from repro.isa.decoder import is_legal


class TestRecoverBasics:
    def test_result_structure(self, code, engine, mcf_image, instruction_context):
        original = mcf_image.words[50]
        received = code.encode(original) ^ (1 << 38) ^ (1 << 30)
        result = engine.recover(received, instruction_context)
        assert result.received == received
        assert len(result.candidates) == result.num_candidates
        assert result.chosen_message in result.valid_messages
        assert result.chosen_codeword in result.candidates
        assert code.extract_message(result.chosen_codeword) == result.chosen_message
        assert result.tied >= 1

    def test_rejects_non_due(self, code, engine):
        with pytest.raises(DecodingError):
            engine.recover(code.encode(1))
        with pytest.raises(DecodingError):
            engine.recover(code.encode(1) ^ 1)

    def test_candidates_match_enumerator(self, code, engine, enumerator):
        received = code.encode(0xCAFED00D) ^ 0b11
        result = engine.recover(received)
        assert result.candidates == enumerator.candidates(received)

    def test_filter_removes_illegal_candidates(
        self, code, engine, mcf_image, instruction_context
    ):
        original = mcf_image.words[60]
        received = code.encode(original) ^ (1 << 38) ^ (1 << 37)
        result = engine.recover(received, instruction_context)
        if not result.filter_fell_back:
            assert all(is_legal(m) for m in result.valid_messages)
            assert original in result.valid_messages

    def test_fallback_when_original_is_illegal(self, code):
        # Store a word that is NOT a legal instruction; if every
        # candidate is illegal the engine must fall back rather than
        # fail.
        engine = SwdEcc(code, rng=random.Random(0))
        received = code.encode(0xFFFFFFFF) ^ (1 << 20) ^ (1 << 3)
        result = engine.recover(received, RecoveryContext())
        assert result.chosen_message is not None
        if result.filter_fell_back:
            assert result.valid_messages == result.candidate_messages

    def test_deterministic_with_first_tiebreak(self, code, instruction_context):
        engine = SwdEcc(code, tie_break=TieBreak.FIRST)
        received = code.encode(0x00000000) ^ (1 << 5) ^ (1 << 4)
        first = engine.recover(received, instruction_context)
        second = engine.recover(received, instruction_context)
        assert first.chosen_message == second.chosen_message

    def test_random_tiebreak_uses_rng(self, code):
        # With a uniform ranker every candidate ties; different seeds
        # must (eventually) pick different candidates.
        received = code.encode(0x12345678) ^ (1 << 30) ^ (1 << 2)
        choices = set()
        for seed in range(10):
            engine = SwdEcc(
                code, filters=(), ranker=UniformRanker(), rng=random.Random(seed)
            )
            choices.add(engine.recover(received).chosen_message)
        assert len(choices) > 1


class TestRecoveryProbability:
    def test_probability_matches_trace(self, code, engine, mcf_image, instruction_context):
        original = mcf_image.words[45]
        received = code.encode(original) ^ (1 << 38) ^ (1 << 0)
        from_trace = success_probability(
            engine.recover(received, instruction_context), original
        )
        direct = engine.recovery_probability(received, original, instruction_context)
        assert from_trace == direct

    def test_certain_recovery_when_unique_survivor(self, code, mcf_image, instruction_context):
        # Find a case where filtering leaves exactly one candidate:
        # probability must be 1.0 and recover() must return the original.
        engine = SwdEcc(code, rng=random.Random(3))
        found = False
        for index in range(40, 80):
            original = mcf_image.words[index]
            codeword = code.encode(original)
            for pattern in double_bit_patterns(code.n)[:120]:
                received = pattern.apply(codeword)
                result = engine.recover(received, instruction_context)
                if result.num_valid == 1 and not result.filter_fell_back:
                    assert result.chosen_message == original
                    assert engine.recovery_probability(
                        received, original, instruction_context
                    ) == 1.0
                    found = True
                    break
            if found:
                break
        assert found, "no singleton-filter case found in the probe window"

    def test_zero_probability_when_original_filtered_out(self, code):
        # If the original message is illegal and some candidate is
        # legal, filtering removes the truth: probability 0.
        engine = SwdEcc(code, rng=random.Random(1))
        original = 0xFC000000  # illegal instruction stored as data
        codeword = code.encode(original)
        for pattern in double_bit_patterns(code.n):
            received = pattern.apply(codeword)
            result = engine.recover(received, RecoveryContext())
            if not result.filter_fell_back and original not in result.valid_messages:
                probability = engine.recovery_probability(
                    received, original, RecoveryContext()
                )
                assert probability == 0.0
                return
        pytest.fail("expected at least one pattern to filter out the original")

    def test_random_candidate_probability_is_reciprocal(self, code):
        engine = SwdEcc(code, filters=(), ranker=UniformRanker(), rng=random.Random(2))
        original = 0x01234567
        received = code.encode(original) ^ (1 << 38) ^ (1 << 18)
        result = engine.recover(received)
        expected = 1.0 / result.num_candidates
        assert engine.recovery_probability(received, original) == pytest.approx(expected)

    @given(st.integers(0, 2**32 - 1), st.data())
    @settings(max_examples=30, deadline=None)
    def test_probability_bounds_property(self, message, data):
        from repro.ecc.matrices import canonical_secded_39_32

        code = canonical_secded_39_32()
        engine = SwdEcc(code, rng=random.Random(0))
        i = data.draw(st.integers(0, code.n - 2))
        j = data.draw(st.integers(i + 1, code.n - 1))
        received = code.encode(message) ^ (1 << (38 - i)) ^ (1 << (38 - j))
        probability = engine.recovery_probability(received, message)
        assert 0.0 <= probability <= 1.0

    def test_first_tiebreak_probability_is_zero_or_one(self, code, instruction_context):
        engine = SwdEcc(code, tie_break=TieBreak.FIRST, rng=random.Random(0))
        original = 0
        received = code.encode(original) ^ (1 << 10) ^ (1 << 20)
        probability = engine.recovery_probability(received, original, instruction_context)
        assert probability in (0.0, 1.0)


class TestSuccessProbabilityHelper:
    def test_zero_when_original_not_valid(self, code, engine):
        received = code.encode(0xABCD1234) ^ (1 << 38) ^ (1 << 37)
        result = engine.recover(received)
        assert success_probability(result, 0xDEADBEEF) == 0.0

    def test_respects_first_tiebreak(self, code):
        engine = SwdEcc(
            code, filters=(InstructionLegalityFilter(),),
            ranker=UniformRanker(), rng=random.Random(0),
        )
        original = 0  # nop: always legal
        received = code.encode(original) ^ (1 << 15) ^ (1 << 25)
        result = engine.recover(received)
        probability = success_probability(result, original, TieBreak.FIRST)
        assert probability in (0.0, 1.0)


class TestRadiusEscalation:
    def test_triple_error_with_no_distance2_codeword_recovers(self, code):
        """A 3-bit accumulated error can sit at distance >= 3 from every
        codeword; the engine must escalate to radius-3 enumeration
        instead of raising."""
        import itertools

        engine = SwdEcc(code, rng=random.Random(0))
        codeword = code.encode(0x8FBF0018)
        found = False
        for positions in itertools.combinations(range(code.n), 3):
            received = codeword
            for position in positions:
                received ^= 1 << (code.n - 1 - position)
            if code.decode(received).status.name != "DUE":
                continue
            from repro.ecc.candidates import CandidateEnumerator

            if CandidateEnumerator(code).candidates(received):
                continue  # this triple still has distance-2 candidates
            result = engine.recover(received)
            assert result.num_candidates > 0
            assert codeword in result.candidates
            found = True
            break
        assert found, "no distance->=3 triple error found (unexpected)"

    def test_recovery_error_when_word_is_impossible(self, code):
        """Words farther than radius 3 from every codeword do exist for
        d=4 codes only as weight->=4 corruptions; verify the error path
        by brute-forcing one."""
        import itertools

        from repro.errors import RecoveryError

        engine = SwdEcc(code, rng=random.Random(0))
        codeword = code.encode(0)
        for positions in itertools.combinations(range(16), 4):
            received = codeword
            for position in positions:
                received ^= 1 << (code.n - 1 - position)
            if code.decode(received).status.name != "DUE":
                continue
            try:
                result = engine.recover(received)
            except RecoveryError:
                return  # the give-up path exists and is exercised
            assert result.num_candidates > 0
        # All probed weight-4 words had nearby codewords: acceptable,
        # the escalation covered them.


class TestMonteCarloConsistency:
    def test_sampled_frequency_matches_exact_probability(self, code, mcf_table):
        """recovery_probability is the exact expectation of recover():
        over many seeded runs the empirical success frequency must
        converge to it (3-sigma binomial bound)."""
        context = RecoveryContext.for_instructions(mcf_table)
        original = 0x00431021  # addu $v0, $v0, $v1 - legal, common class
        received = code.encode(original) ^ (1 << 25) ^ (1 << 15)
        probe = SwdEcc(code, rng=random.Random(0))
        probability = probe.recovery_probability(received, original, context)
        assert 0.0 < probability < 1.0, "pick a tie case for this test"

        trials = 2000
        successes = 0
        for seed in range(trials):
            engine = SwdEcc(code, rng=random.Random(seed))
            result = engine.recover(received, context)
            successes += result.chosen_message == original
        frequency = successes / trials
        sigma = (probability * (1 - probability) / trials) ** 0.5
        assert abs(frequency - probability) < 4 * sigma + 1e-9
