"""Contract tests: every filter and ranker obeys the engine's rules.

The SWD-ECC engine assumes properties of its pluggable pieces (see
docs/extending.md).  These tests enforce them *generically* over every
shipped implementation, so a new filter or ranker added to the library
is automatically held to the same contract.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filters import (
    FilterChain,
    InstructionLegalityFilter,
    InstructionPairLegalityFilter,
    IntegerMagnitudeFilter,
    OracleLegalityFilter,
    PointerRangeFilter,
)
from repro.core.rankers import (
    BigramContextRanker,
    BitwiseSimilarityRanker,
    FrequencyRanker,
    MagnitudeSimilarityRanker,
    OracleFrequencyRanker,
    PairFrequencyRanker,
    UniformRanker,
)
from repro.core.sideinfo import RecoveryContext
from repro.isa_rv import is_legal as rv_is_legal, try_mnemonic as rv_mnemonic
from repro.program.stats import BigramTable, FrequencyTable
from repro.program.image import ProgramImage
from repro.isa.encoder import encode


def _bigram_table():
    words = [encode("lw", rt=8, rs=29, imm=4), encode("addu", rd=8, rs=8, rt=9)] * 8
    return BigramTable.from_image(
        ProgramImage.from_words("contract", words, base_address=0x400000)
    )


ALL_FILTERS = [
    InstructionLegalityFilter(),
    InstructionPairLegalityFilter(),
    OracleLegalityFilter(rv_is_legal, "rv32i-legality"),
    IntegerMagnitudeFilter(),
    PointerRangeFilter(),
    FilterChain([IntegerMagnitudeFilter(), PointerRangeFilter()]),
    FilterChain([]),
]

ALL_RANKERS = [
    FrequencyRanker(),
    OracleFrequencyRanker(rv_mnemonic, "rv32i"),
    BigramContextRanker(),
    PairFrequencyRanker(),
    UniformRanker(),
    MagnitudeSimilarityRanker(),
    BitwiseSimilarityRanker(),
]

RICH_CONTEXT = RecoveryContext(
    frequency_table=FrequencyTable.from_counts("c", {"lw": 5, "sw": 2}),
    bigram_table=_bigram_table(),
    preceding_mnemonic="lw",
    following_mnemonic="addu",
    neighborhood=(100, 200, 300),
    value_bound=1 << 20,
    pointer_range=(0x1000, 0x20000),
    address=0x1234,
)

CONTEXTS = [RecoveryContext(), RICH_CONTEXT]


def message_lists():
    return st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=12)


class TestFilterContracts:
    @pytest.mark.parametrize("candidate_filter", ALL_FILTERS, ids=lambda f: f.name)
    @pytest.mark.parametrize("context", CONTEXTS, ids=("empty", "rich"))
    @given(messages=message_lists())
    @settings(max_examples=25, deadline=None)
    def test_returns_ordered_subsequence(self, candidate_filter, context, messages):
        result = candidate_filter.apply(messages, context)
        # Subsequence check: every output appears in the input, and
        # relative order is preserved.
        iterator = iter(messages)
        for item in result:
            for candidate in iterator:
                if candidate == item:
                    break
            else:
                pytest.fail(f"{candidate_filter.name} invented or reordered {item}")

    @pytest.mark.parametrize("candidate_filter", ALL_FILTERS, ids=lambda f: f.name)
    @given(messages=message_lists())
    @settings(max_examples=25, deadline=None)
    def test_noop_without_side_information(self, candidate_filter, messages):
        """Filters keyed on context fields must pass everything through
        when those fields are absent (legality filters are exempt:
        their premise is the memory kind, not a context field)."""
        if "legality" in candidate_filter.name or isinstance(
            candidate_filter, FilterChain
        ):
            pytest.skip("legality filters carry their own oracle")
        result = candidate_filter.apply(messages, RecoveryContext())
        assert list(result) == list(messages)

    @pytest.mark.parametrize("candidate_filter", ALL_FILTERS, ids=lambda f: f.name)
    def test_idempotent(self, candidate_filter):
        messages = [0, 1, 0x8FBF0018, 0xFFFFFFFF, 0x00112623, 0x1500]
        once = candidate_filter.apply(messages, RICH_CONTEXT)
        twice = candidate_filter.apply(once, RICH_CONTEXT)
        assert once == twice

    @pytest.mark.parametrize("candidate_filter", ALL_FILTERS, ids=lambda f: f.name)
    def test_has_a_name(self, candidate_filter):
        assert candidate_filter.name
        assert candidate_filter.name != "filter"


class TestRankerContracts:
    @pytest.mark.parametrize("ranker", ALL_RANKERS, ids=lambda r: r.name)
    @pytest.mark.parametrize("context", CONTEXTS, ids=("empty", "rich"))
    @given(message=st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_deterministic_and_finite(self, ranker, context, message):
        first = ranker.score(message, context)
        second = ranker.score(message, context)
        assert first == second
        assert first == first  # not NaN
        assert isinstance(first, (int, float))

    @pytest.mark.parametrize("ranker", ALL_RANKERS, ids=lambda r: r.name)
    def test_has_a_name(self, ranker):
        assert ranker.name
        assert ranker.name != "ranker"

    @pytest.mark.parametrize("ranker", ALL_RANKERS, ids=lambda r: r.name)
    def test_usable_by_the_engine_end_to_end(self, ranker, code):
        """Every ranker must drive a full recover() without error."""
        from repro.core.swdecc import SwdEcc

        engine = SwdEcc(code, filters=(), ranker=ranker, rng=random.Random(0))
        received = code.encode(0x8FBF0018) ^ (1 << 38) ^ (1 << 20)
        result = engine.recover(received, RICH_CONTEXT)
        assert result.chosen_message in result.candidate_messages
