"""Precompiled decode tables: bit-identity, fallbacks, and bounds.

The fast path's contract is *bit-identity*: a precompiled engine must
return results indistinguishable from the reference pipeline — same
fields, same tie-break RNG consumption, same exceptions with the same
messages — across every double-bit syndrome, plus clean bypasses for
everything the table does not cover (radius escalation) and clean
interop for everything downstream (equality, hashing, pickling).
"""

from __future__ import annotations

import copy
import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import RecoveryResult, SwdEcc, TieBreak
from repro.ecc import canonical_secded_39_32, hsiao_39_32
from repro.ecc.candidates import MAX_RADIUS_ENTRIES, CandidateEnumerator
from repro.ecc.channel import double_bit_patterns
from repro.ecc.code import DecodeStatus
from repro.ecc.decode_table import DecodeTable
from repro.errors import DecodingError
from repro.isa.decoder import (
    ALL_SELECTOR_FIELDS,
    SELECTOR_FIELD_MASKS,
    _spec_for_word,
    selector_key,
    spec_for_selector_key,
)
from repro.obs import metrics as obs_metrics
from repro.program.stats import FrequencyTable
from repro.program.synth import synthesize_benchmark

CODE = canonical_secded_39_32()
PATTERNS = tuple(pattern.vector for pattern in double_bit_patterns(CODE.n))
IMAGE = synthesize_benchmark("mcf", length=512, seed=2016)
CONTEXT = RecoveryContext.for_instructions(FrequencyTable.from_image(IMAGE))


def _engines(tie_break=TieBreak.FIRST, seed=0):
    """An identically configured (precompiled, reference) engine pair."""
    fast = SwdEcc(
        CODE, tie_break=tie_break, rng=random.Random(seed), precompile=True
    )
    reference = SwdEcc(CODE, tie_break=tie_break, rng=random.Random(seed))
    assert fast.precompiled and not reference.precompiled
    return fast, reference


# ---------------------------------------------------------------------------
# Table structure
# ---------------------------------------------------------------------------


def test_table_covers_all_double_bit_syndromes():
    table = DecodeTable(CODE)
    assert table.num_syndromes == 63
    assert table.num_pairs == 741
    assert table.supports_fast_path
    assert table.resident_bytes > 0
    assert table.build_seconds > 0


def test_table_pair_masks_match_lazy_enumerator():
    table = DecodeTable(CODE)
    lazy = CandidateEnumerator(CODE)
    seen = set()
    for pattern in PATTERNS:
        syndrome = CODE.syndrome(pattern)
        if syndrome in seen:
            continue
        seen.add(syndrome)
        assert table.pair_masks(syndrome) == lazy.pair_masks(syndrome)
    # Syndromes no pair produces answer the empty tuple, like the walk.
    uncovered = next(
        s for s in range(1, 128) if table.entry(s) is None
    )
    assert table.pair_masks(uncovered) == lazy.pair_masks(uncovered) == ()


@settings(max_examples=100, deadline=None)
@given(received=st.integers(min_value=0, max_value=(1 << CODE.n) - 1))
def test_chunked_syndrome_matches_code(received):
    table = DecodeTable(CODE)
    assert table.syndrome_of(received) == CODE.syndrome(received)


def test_install_table_rejects_foreign_code():
    table = DecodeTable(CODE)
    enumerator = CandidateEnumerator(hsiao_39_32())
    with pytest.raises(DecodingError, match="different code"):
        enumerator.install_table(table)


def test_build_registers_metrics():
    registry = obs_metrics.MetricsRegistry()
    previous = obs_metrics.set_registry(registry)
    try:
        DecodeTable(CODE)
    finally:
        obs_metrics.set_registry(previous)
    assert registry.counter("decode_table.builds").value == 1
    assert registry.counter("decode_table.entries").value == 63
    assert registry.counter("decode_table.pair_masks").value == 741
    assert registry.counter("decode_table.resident_bytes").value > 0
    assert registry.histogram("decode_table.build_seconds").count == 1


# ---------------------------------------------------------------------------
# Selector-key purity (what makes decision rows safe to share)
# ---------------------------------------------------------------------------


@settings(max_examples=300, deadline=None)
@given(word=st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_spec_is_selector_pure(word):
    """Legality and mnemonic depend only on the selector-field bits."""
    via_key = spec_for_selector_key(selector_key(word))
    direct = _spec_for_word(word)
    assert (direct is None) == (via_key is None)
    if direct is not None:
        assert direct.mnemonic == via_key.mnemonic


def test_selector_masks_within_union():
    for opcode_mask in SELECTOR_FIELD_MASKS:
        assert opcode_mask & ~ALL_SELECTOR_FIELDS == 0


# ---------------------------------------------------------------------------
# Bit-identity of recover()
# ---------------------------------------------------------------------------


def test_identical_across_all_741_patterns():
    """Every double-bit pattern, deterministic tie-break, full equality
    (equality materializes every lazy field on the fast result)."""
    fast, reference = _engines()
    for index, pattern in enumerate(PATTERNS):
        received = CODE.encode(IMAGE.words[index % len(IMAGE.words)]) ^ pattern
        fast_result = fast.recover(received, CONTEXT)
        reference_result = reference.recover(received, CONTEXT)
        assert fast_result == reference_result
        assert reference_result == fast_result  # reflected (cross-class)
        assert hash(fast_result) == hash(reference_result)


@settings(max_examples=50, deadline=None)
@given(
    message=st.integers(min_value=0, max_value=(1 << 32) - 1),
    pattern_index=st.integers(min_value=0, max_value=len(PATTERNS) - 1),
)
def test_identical_on_random_words(message, pattern_index):
    fast, reference = _engines()
    received = CODE.encode(message) ^ PATTERNS[pattern_index]
    assert fast.recover(received, CONTEXT) == reference.recover(
        received, CONTEXT
    )


@settings(max_examples=30, deadline=None)
@given(
    message=st.integers(min_value=0, max_value=(1 << 32) - 1),
    pattern_index=st.integers(min_value=0, max_value=len(PATTERNS) - 1),
    seed=st.integers(min_value=0, max_value=1 << 16),
)
def test_identical_rng_consumption_random_tie_break(
    message, pattern_index, seed
):
    """RANDOM tie-break consumes identical RNG state on both paths."""
    fast, reference = _engines(tie_break=TieBreak.RANDOM, seed=seed)
    received = CODE.encode(message) ^ PATTERNS[pattern_index]
    for _ in range(3):  # repeated draws keep the streams aligned
        assert fast.recover(received, CONTEXT) == reference.recover(
            received, CONTEXT
        )
    assert fast._rng.random() == reference._rng.random()


def test_identical_without_context():
    """No side info: empty filter/ranker context, still bit-identical."""
    fast, reference = _engines()
    received = CODE.encode(0xDEADBEEF) ^ PATTERNS[3]
    assert fast.recover(received) == reference.recover(received)


def test_identical_on_filter_fallback():
    """A word whose candidates are all illegal falls back identically."""
    fast, reference = _engines()
    fallback = None
    for message in range(0, 1 << 16):
        received = CODE.encode(message << 26) ^ PATTERNS[0]
        result = reference.recover(received, CONTEXT)
        if result.filter_fell_back:
            fallback = received
            break
    assert fallback is not None, "no fallback case found"
    fast_result = fast.recover(fallback, CONTEXT)
    assert fast_result.filter_fell_back
    assert fast_result == reference.recover(fallback, CONTEXT)


def test_radius_escalation_bypasses_table():
    """A 3-bit error has no table entry: the reference path serves it."""
    fast, reference = _engines()
    table = fast.decode_table
    received = None
    for i in range(CODE.n):
        for j in range(i + 1, CODE.n):
            for k in range(j + 1, CODE.n):
                error = (1 << i) | (1 << j) | (1 << k)
                word = CODE.encode(0x12345678) ^ error
                syndrome = CODE.syndrome(word)
                if (
                    syndrome != 0
                    and syndrome not in CODE.syndrome_to_position
                    and table.entry(syndrome) is None
                ):
                    received = word
                    break
            if received is not None:
                break
        if received is not None:
            break
    assert received is not None, "no escalating triple error found"
    fast_result = fast.recover(received, CONTEXT)
    reference_result = reference.recover(received, CONTEXT)
    assert fast_result == reference_result
    assert type(fast_result) is RecoveryResult  # not a table-served result


@pytest.mark.parametrize(
    "received",
    [
        CODE.encode(0xCAFE),        # clean codeword
        CODE.encode(0xCAFE) ^ 1,    # correctable single-bit error
        1 << CODE.n,                # out of range
        -1,                         # negative
    ],
)
def test_non_due_errors_match_reference(received):
    fast, reference = _engines()
    with pytest.raises(DecodingError) as fast_error:
        fast.recover(received, CONTEXT)
    with pytest.raises(DecodingError) as reference_error:
        reference.recover(received, CONTEXT)
    assert str(fast_error.value) == str(reference_error.value)


# ---------------------------------------------------------------------------
# Result interop (lazy fields, pickling, copying)
# ---------------------------------------------------------------------------


def test_lazy_result_pickles_and_copies_as_plain_result():
    fast, reference = _engines()
    received = CODE.encode(IMAGE.words[0]) ^ PATTERNS[10]
    fast_result = fast.recover(received, CONTEXT)
    reference_result = reference.recover(received, CONTEXT)

    unpickled = pickle.loads(pickle.dumps(fast_result))
    assert type(unpickled) is RecoveryResult
    assert unpickled == reference_result
    assert copy.copy(fast_result) == reference_result
    assert copy.deepcopy(fast_result) == reference_result
    assert {fast_result, reference_result} == {reference_result}

    assert fast_result.num_candidates == reference_result.num_candidates
    assert fast_result.num_valid == reference_result.num_valid
    assert fast_result.recovered(IMAGE.words[0]) == reference_result.recovered(
        IMAGE.words[0]
    )


# ---------------------------------------------------------------------------
# Engine configuration guards
# ---------------------------------------------------------------------------


def test_precompile_requires_cache():
    with pytest.raises(ValueError, match="requires cache=True"):
        SwdEcc(CODE, precompile=True, cache=False)


def test_precompile_is_idempotent():
    engine = SwdEcc(CODE, precompile=True)
    table = engine.decode_table
    assert engine.precompile() is table


def test_service_catalog_precompiles_by_default():
    from repro.service.catalog import DEFAULT_CODE_ID, ServiceCatalog

    assert ServiceCatalog().engine(DEFAULT_CODE_ID).precompiled
    assert not ServiceCatalog(precompile=False).engine(
        DEFAULT_CODE_ID
    ).precompiled


# ---------------------------------------------------------------------------
# Escalation memo bound (clear-in-place, like ContextCache)
# ---------------------------------------------------------------------------


def test_radius_offsets_memo_is_bounded():
    enumerator = CandidateEnumerator(CODE)
    memo = enumerator._radius_offsets
    for fake_key in range(MAX_RADIUS_ENTRIES):
        memo[(1 << 20) + fake_key, 3] = ()
    assert len(memo) == MAX_RADIUS_ENTRIES

    received = CODE.encode(0xABCD) ^ 0b111  # triple error: escalates
    result = enumerator.candidates_within_radius(received, 3)
    assert result  # the original codeword is within radius 3
    # The cap cleared the memo in place (same dict object) and the new
    # entry was recorded afterwards.
    assert enumerator._radius_offsets is memo
    assert len(memo) == 1
    # A repeat enumeration is served from the freshly stored entry.
    assert enumerator.candidates_within_radius(received, 3) == result


# ---------------------------------------------------------------------------
# Correctable-radius guard (t >= 2 codes must demote to the lazy path)
# ---------------------------------------------------------------------------


def test_radius_one_guard_accepts_secded_family():
    from repro.ecc.daec import daec_code

    for code in (CODE, hsiao_39_32(), daec_code()):
        table = DecodeTable(code)
        assert table.radius_one, code.name
        assert table.supports_fast_path, code.name


def test_radius_one_guard_demotes_dec_and_dected():
    from repro.ecc.bch import dec_code, dected_code

    for factory in (dec_code, dected_code):
        code = factory()
        table = DecodeTable(code)
        assert code.correctable_bits() == 2
        assert not table.radius_one, code.name
        assert not table.supports_fast_path, code.name


def test_precompiled_dec_engine_uses_reference_path():
    from repro.ecc.bch import dec_code

    engine = SwdEcc(
        dec_code(), tie_break=TieBreak.FIRST, rng=random.Random(0),
        precompile=True,
    )
    # The table exists (pair_masks delegation stays useful) but must
    # not arm the recovery fast path.
    assert engine.decode_table is not None
    assert not engine.decode_table.supports_fast_path


def test_dec_precompile_bit_identical_regression():
    """(44, 32) DEC with precompile=True == reference, word for word.

    DEC corrects doubles in hardware, so its DUE class is triples; a
    2-bit-coset table serving those would shadow the wider enumeration.
    """
    from repro.ecc.bch import dec_code

    code = dec_code()
    fast = SwdEcc(
        code, tie_break=TieBreak.FIRST, rng=random.Random(0),
        precompile=True,
    )
    reference = SwdEcc(code, tie_break=TieBreak.FIRST, rng=random.Random(0))
    rng = random.Random(2016)
    compared = 0
    while compared < 25:
        message = IMAGE.words[rng.randrange(len(IMAGE.words))]
        positions = rng.sample(range(code.n), 3)
        received = code.encode(message)
        for position in positions:
            received ^= 1 << (code.n - 1 - position)
        if code.decode(received).status is not DecodeStatus.DUE:
            continue  # some triples decode inside the t=2 sphere
        fast_result = fast.recover(received, CONTEXT)
        reference_result = reference.recover(received, CONTEXT)
        assert fast_result == reference_result
        assert hash(fast_result) == hash(reference_result)
        compared += 1


def test_daec_precompiled_identical_on_non_adjacent_doubles():
    from repro.ecc.daec import daec_code

    code = daec_code()
    fast = SwdEcc(
        code, tie_break=TieBreak.FIRST, rng=random.Random(0),
        precompile=True,
    )
    reference = SwdEcc(code, tie_break=TieBreak.FIRST, rng=random.Random(0))
    rng = random.Random(7)
    for _ in range(25):
        message = IMAGE.words[rng.randrange(len(IMAGE.words))]
        i = rng.randrange(code.n)
        j = rng.randrange(code.n)
        while abs(i - j) <= 1:
            j = rng.randrange(code.n)
        received = code.encode(message)
        received ^= 1 << (code.n - 1 - i)
        received ^= 1 << (code.n - 1 - j)
        assert code.decode(received).status is DecodeStatus.DUE
        assert fast.recover(received, CONTEXT) == reference.recover(
            received, CONTEXT
        )
