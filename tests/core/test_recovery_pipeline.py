"""Tests for the Fig. 3 recovery ladder (RecoveryPipeline)."""

from __future__ import annotations

import random

import pytest

from repro.core.recovery import RecoveryAction, RecoveryPipeline
from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import SwdEcc


class _FakePages:
    def __init__(self, words):
        self._words = words

    def clean_copy(self, address):
        return self._words.get(address)


class _FakeCheckpoints:
    def __init__(self, available=True):
        self.available = available
        self.rollbacks = 0

    def has_checkpoint(self):
        return self.available

    def rollback(self):
        self.rollbacks += 1
        self.available = False


@pytest.fixture()
def engine(code):
    return SwdEcc(code, rng=random.Random(0))


def make_due(code, message=0x01234567):
    return code.encode(message) ^ (1 << 38) ^ (1 << 7)


class TestLadderOrdering:
    def test_clean_page_wins(self, code, engine):
        pages = _FakePages({0x1000: 0xAAAA5555})
        checkpoints = _FakeCheckpoints()
        pipeline = RecoveryPipeline(engine, pages, checkpoints)
        outcome = pipeline.handle_due(0x1000, make_due(code))
        assert outcome.action is RecoveryAction.PAGE_FAULT_RELOAD
        assert outcome.word == 0xAAAA5555
        assert checkpoints.rollbacks == 0
        assert outcome.made_forward_progress

    def test_rollback_when_page_dirty(self, code, engine):
        pages = _FakePages({})
        checkpoints = _FakeCheckpoints()
        pipeline = RecoveryPipeline(engine, pages, checkpoints)
        outcome = pipeline.handle_due(0x1000, make_due(code))
        assert outcome.action is RecoveryAction.ROLLBACK
        assert checkpoints.rollbacks == 1
        assert outcome.word is None
        assert not outcome.made_forward_progress

    def test_heuristic_as_last_resort(self, code, engine):
        checkpoints = _FakeCheckpoints(available=False)
        pipeline = RecoveryPipeline(engine, _FakePages({}), checkpoints)
        outcome = pipeline.handle_due(0x1000, make_due(code))
        assert outcome.action is RecoveryAction.HEURISTIC
        assert outcome.word is not None
        assert outcome.heuristic is not None
        assert outcome.made_forward_progress

    def test_heuristic_without_any_outs(self, code, engine):
        pipeline = RecoveryPipeline(engine)
        outcome = pipeline.handle_due(0x0, make_due(code))
        assert outcome.action is RecoveryAction.HEURISTIC

    def test_conventional_system_crashes(self, code, engine):
        pipeline = RecoveryPipeline(engine, allow_heuristic=False)
        outcome = pipeline.handle_due(0x0, make_due(code))
        assert outcome.action is RecoveryAction.CRASH
        assert not outcome.made_forward_progress

    def test_context_forwarded_to_engine(self, code, engine, mcf_table):
        pipeline = RecoveryPipeline(engine)
        original = 0x8FBF0018  # lw $ra, 24($sp): legal, common
        received = code.encode(original) ^ (1 << 0) ^ (1 << 1)
        context = RecoveryContext.for_instructions(mcf_table)
        outcome = pipeline.handle_due(0x0, received, context)
        assert outcome.heuristic is not None
        # The frequency table must have been consulted: scores are the
        # mnemonic frequencies, not the uniform placeholder 1.0.
        assert any(score <= 1.0 for score in outcome.heuristic.scores)

    def test_engine_property(self, code, engine):
        assert RecoveryPipeline(engine).engine is engine
