"""Regression tests for the ContextCache cap-clear aliasing bug.

``ContextCache.values_for`` returns the *live* memo dict for hot loops
to use directly.  The entry-cap clear used to rebind ``self._values``
to a fresh dict, which orphaned any reference a hot loop was still
holding: the loop kept writing into the dead dict, the cache recorded
nothing, and every subsequent lookup missed — silently losing
memoization and skewing the ``*.cache_hit_rate`` gauges.  The cap must
clear **in place**; only a context switch may rebind.
"""

from __future__ import annotations

import pytest

from repro.core import cache as cache_module
from repro.core.cache import MISSING, ContextCache


@pytest.fixture()
def small_cap(monkeypatch):
    """Shrink the entry cap so tests can cross it in a few stores."""
    monkeypatch.setattr(cache_module, "MAX_ENTRIES", 8)
    return 8


class TestCapClearAliasing:
    def test_values_for_stays_live_across_cap_clear(self, small_cap):
        # The hot-loop pattern: fetch the dict once, then read/write it
        # directly while the generation crosses the entry cap.
        cache = ContextCache()
        context = object()
        values = cache.values_for(context)
        for message in range(small_cap):
            values[message] = message * 10
        # Crossing the cap (e.g. another apply() call fetching the memo)
        # clears the generation...
        cleared = cache.values_for(context)
        assert len(cache) == 0
        # ...but the original holder must still be writing into the
        # *live* dict, not an orphaned one.
        values[99] = 990
        assert cleared is values, (
            "cap clear rebound the memo dict; hot-loop holders are now "
            "writing into an orphaned copy"
        )
        assert cache.lookup(context, 99) == 990

    def test_store_cap_clear_keeps_holders_live(self, small_cap):
        cache = ContextCache()
        context = object()
        values = cache.values_for(context)
        for message in range(small_cap):
            cache.store(message, message)
        # This store crosses the cap inside store() itself.
        cache.store(small_cap, "kept")
        assert len(cache) == 1
        values[77] = "via-holder"
        assert cache.lookup(context, small_cap) == "kept"
        assert cache.lookup(context, 77) == "via-holder"

    def test_cap_clear_mid_loop_preserves_memoization(self, small_cap):
        # Simulate score_many: one fetch, then a write loop that crosses
        # the cap several times while other callers keep re-fetching the
        # memo.  Every post-clear write must land in the live dict.
        cache = ContextCache()
        context = object()
        values = cache.values_for(context)
        for message in range(small_cap * 3 + 3):
            values[message] = message
            if len(values) >= cache_module.MAX_ENTRIES:
                # Another caller arriving mid-loop triggers the cap.
                cache.values_for(context)
        fresh = cache.values_for(context)
        assert fresh is values, (
            "the hot loop's dict was orphaned by a cap clear mid-loop"
        )
        # The tail of the loop (after the last clear) is memoized.
        assert len(fresh) == 3
        for message, value in fresh.items():
            assert cache.lookup(context, message) == value

    def test_context_switch_still_rebinds(self, small_cap):
        # A *context* change must NOT clear in place: a stale holder
        # from the previous generation would otherwise leak dead
        # entries into the new context's memo.
        cache = ContextCache()
        first, second = object(), object()
        stale = cache.values_for(first)
        stale[1] = "old-generation"
        fresh = cache.values_for(second)
        assert fresh is not stale
        stale[2] = "late-write-from-dead-holder"
        assert cache.lookup(second, 2) is MISSING


class TestLookupStoreSemanticsUnchanged:
    def test_lookup_miss_then_store_then_hit(self):
        cache = ContextCache()
        context = object()
        assert cache.lookup(context, 5) is MISSING
        cache.store(5, "value")
        assert cache.lookup(context, 5) == "value"

    def test_context_rebind_clears(self):
        cache = ContextCache()
        first, second = object(), object()
        cache.lookup(first, 1)
        cache.store(1, "one")
        assert cache.lookup(second, 1) is MISSING
        assert len(cache) == 0
