"""Tests for the exception hierarchy and the public package surface."""

from __future__ import annotations

import pytest

from repro import errors


class TestExceptionHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in errors.__all__:
            if name == "ReproError":
                continue
            exception_class = getattr(errors, name)
            assert issubclass(exception_class, errors.ReproError), name

    def test_subsystem_grouping(self):
        assert issubclass(errors.IllegalInstructionError, errors.IsaError)
        assert issubclass(errors.AssemblerError, errors.IsaError)
        assert issubclass(errors.ElfFormatError, errors.ProgramImageError)
        assert issubclass(errors.UncorrectableError, errors.MemoryFaultError)
        assert issubclass(errors.CpuFault, errors.SimulationError)

    def test_illegal_instruction_carries_word_and_reason(self):
        error = errors.IllegalInstructionError(0xFC000000, "reserved opcode")
        assert error.word == 0xFC000000
        assert "fc000000" in str(error)
        assert "reserved opcode" in str(error)

    def test_uncorrectable_error_carries_location(self):
        error = errors.UncorrectableError(0x1000, 0x5A)
        assert error.address == 0x1000
        assert error.syndrome == 0x5A
        assert "0x1000" in str(error)

    def test_cpu_fault_carries_symptom(self):
        fault = errors.CpuFault("illegal-instruction", 0x400000, "opcode 0x3f")
        assert fault.symptom == "illegal-instruction"
        assert fault.pc == 0x400000
        assert "0x00400000" in str(fault)

    def test_one_except_clause_catches_the_library(self):
        from repro.ecc import canonical_secded_39_32

        code = canonical_secded_39_32()
        with pytest.raises(errors.ReproError):
            code.encode(1 << 32)


class TestPublicApi:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version_is_set(self):
        import repro

        assert repro.__version__

    def test_subpackage_all_lists_are_accurate(self):
        import importlib

        for module_name in (
            "repro.ecc", "repro.isa", "repro.program", "repro.memory",
            "repro.sim", "repro.core", "repro.analysis",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name}"

    def test_sixty_second_tour_runs(self):
        # The snippet from the package docstring, at tiny scale.
        from repro.analysis import run_fig8
        from repro.program import synthesize_benchmark

        images = [synthesize_benchmark("mcf", length=64)]
        result = run_fig8(images=images, num_instructions=2)
        assert 0.0 <= result.overall_mean <= 1.0
