"""Tests for the minimal ELF32 reader/writer."""

from __future__ import annotations

import struct

import pytest

from repro.errors import ElfFormatError
from repro.program.elf import read_elf, write_elf
from repro.program.image import ProgramImage


@pytest.fixture()
def image():
    return ProgramImage.from_words(
        "sample", [0x8FBF0018, 0x03E00008, 0], base_address=0x400000
    )


class TestRoundtrip:
    def test_words_and_base_preserved(self, image):
        data = write_elf(image)
        back = read_elf(data, name="sample")
        assert back.words == image.words
        assert back.base_address == image.base_address
        assert back.name == "sample"

    def test_header_identifies_mips_big_endian(self, image):
        data = write_elf(image)
        assert data[:4] == b"\x7fELF"
        assert data[4] == 1  # ELFCLASS32
        assert data[5] == 2  # big-endian
        machine = struct.unpack_from(">H", data, 18)[0]
        assert machine == 8  # EM_MIPS

    def test_text_payload_is_big_endian(self, image):
        data = write_elf(image)
        # ELF header is 52 bytes; .text follows immediately.
        first_word = struct.unpack_from(">I", data, 52)[0]
        assert first_word == image.words[0]


class TestMalformedInputs:
    def test_truncated_file(self):
        with pytest.raises(ElfFormatError, match="smaller than an ELF header"):
            read_elf(b"\x7fELF")

    def test_bad_magic(self, image):
        data = bytearray(write_elf(image))
        data[0] = 0x00
        with pytest.raises(ElfFormatError, match="magic"):
            read_elf(bytes(data))

    def test_wrong_class(self, image):
        data = bytearray(write_elf(image))
        data[4] = 2  # ELFCLASS64
        with pytest.raises(ElfFormatError, match="32-bit"):
            read_elf(bytes(data))

    def test_wrong_endianness(self, image):
        data = bytearray(write_elf(image))
        data[5] = 1  # little-endian
        with pytest.raises(ElfFormatError, match="big-endian"):
            read_elf(bytes(data))

    def test_wrong_machine(self, image):
        data = bytearray(write_elf(image))
        struct.pack_into(">H", data, 18, 3)  # EM_386
        with pytest.raises(ElfFormatError, match="MIPS"):
            read_elf(bytes(data))

    def test_section_table_out_of_bounds(self, image):
        data = bytearray(write_elf(image))
        struct.pack_into(">I", data, 32, len(data) + 100)  # e_shoff
        with pytest.raises(ElfFormatError, match="section header table"):
            read_elf(bytes(data))

    def test_misaligned_text_size(self, image):
        data = bytearray(write_elf(image))
        # Corrupt the .text section header's sh_size (section 1).
        e_shoff = struct.unpack_from(">I", data, 32)[0]
        text_shdr_offset = e_shoff + 40  # one 40-byte header in
        struct.pack_into(">I", data, text_shdr_offset + 20, 6)  # sh_size
        with pytest.raises(ElfFormatError, match="multiple of 4"):
            read_elf(bytes(data))

    def test_missing_text_section(self, image):
        data = bytearray(write_elf(image))
        # Rename ".text" in the string table to ".tex\0".
        index = bytes(data).find(b".text\x00")
        data[index : index + 6] = b".tex\x00\x00"
        with pytest.raises(ElfFormatError, match="no .text"):
            read_elf(bytes(data))


class TestInteropWithSynthesizedImages:
    def test_large_synthetic_roundtrip(self):
        from repro.program.synth import synthesize_benchmark

        image = synthesize_benchmark("perlbench", length=1024)
        assert read_elf(write_elf(image), name=image.name).words == image.words
