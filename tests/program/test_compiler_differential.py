"""Differential fuzzing of the MiniLang compiler.

Hypothesis builds random arithmetic expressions as a tree, renders
each to MiniLang source, evaluates a Python reference model with C
semantics (32-bit wrap, truncating division, arithmetic right shift),
compiles the source to MIPS, runs it on the CPU simulator, and compares
the results.  Every layer is exercised end to end: parser, code
generator, assembler, encoder, decoder, and CPU arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.program.compiler import compile_source
from repro.sim.cpu import Cpu
from repro.sim.mem_iface import FlatMemory

BASE = 0x400000
MASK = 0xFFFFFFFF


def _signed(value: int) -> int:
    value &= MASK
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


@dataclass(frozen=True)
class _Expr:
    """A rendered expression plus its C-semantics value."""

    text: str
    value: int  # signed 32-bit


def _leaf(value: int) -> _Expr:
    return _Expr(text=str(value), value=value)


def _binary(op: str, left: _Expr, right: _Expr) -> _Expr | None:
    a, b = left.value, right.value
    if op == "+":
        value = _signed(a + b)
    elif op == "-":
        value = _signed(a - b)
    elif op == "*":
        value = _signed(a * b)
    elif op == "/":
        if b == 0:
            return None
        value = _signed(int(a / b))  # C: truncate toward zero
    elif op == "%":
        if b == 0:
            return None
        quotient = int(a / b)
        value = _signed(a - quotient * b)
    elif op == "&":
        value = _signed(a & b)
    elif op == "|":
        value = _signed(a | b)
    elif op == "^":
        value = _signed(a ^ b)
    elif op == "<<":
        if not 0 <= b <= 31:
            return None
        value = _signed((a & MASK) << b)
    elif op == ">>":
        if not 0 <= b <= 31:
            return None
        value = _signed(a >> b)  # arithmetic shift on signed a
    elif op == "<":
        value = 1 if a < b else 0
    elif op == "<=":
        value = 1 if a <= b else 0
    elif op == ">":
        value = 1 if a > b else 0
    elif op == ">=":
        value = 1 if a >= b else 0
    elif op == "==":
        value = 1 if a == b else 0
    elif op == "!=":
        value = 1 if a != b else 0
    else:  # pragma: no cover
        raise AssertionError(op)
    return _Expr(text=f"({left.text} {op} {right.text})", value=value)


_OPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
        "<", "<=", ">", ">=", "==", "!=")


@st.composite
def expressions(draw, depth: int = 0) -> _Expr:
    if depth >= 4 or draw(st.booleans()):
        return _leaf(draw(st.integers(-1000, 1000)))
    op = draw(st.sampled_from(_OPS))
    left = draw(expressions(depth + 1))
    right = draw(expressions(depth + 1))
    result = _binary(op, left, right)
    if result is None:
        # Division by zero / invalid shift: fall back to a safe variant.
        return _binary("+", left, right)  # never None
    return result


class TestCompilerDifferential:
    @given(expressions())
    @settings(max_examples=120, deadline=None)
    def test_expression_value_matches_reference(self, expr: _Expr):
        # Exit codes are clipped into print output; print the value and
        # compare the syscall trace instead (print handles full range).
        source = f"fn main() {{ print({expr.text}); return 0; }}"
        program = compile_source(source, base_address=BASE)
        memory = FlatMemory()
        memory.load_image(program.words, BASE)
        cpu = Cpu(
            memory, entry_pc=BASE,
            text_range=(BASE, BASE + 4 * len(program.words)),
        )
        result = cpu.run(max_steps=100_000)
        assert result.symptom is None, (expr.text, result.symptom)
        assert result.output == (expr.value,), expr.text
