"""Tests for ProgramImage and mnemonic statistics."""

from __future__ import annotations

import pytest

from repro.errors import ProgramImageError
from repro.isa.encoder import encode
from repro.program.image import ProgramImage
from repro.program.stats import FrequencyTable, mnemonic_histogram, power_law_fit


def _image(words, name="test", base=0x400000):
    return ProgramImage.from_words(name, words, base_address=base)


class TestProgramImage:
    def test_basic_properties(self):
        image = _image([0, encode("jr", rs=31)])
        assert len(image) == 2
        assert list(image) == list(image.words)

    def test_empty_rejected(self):
        with pytest.raises(ProgramImageError):
            _image([])

    def test_misaligned_base_rejected(self):
        with pytest.raises(ProgramImageError):
            _image([0], base=0x400002)

    def test_oversized_word_rejected(self):
        with pytest.raises(ProgramImageError):
            _image([1 << 32])

    def test_addressing(self):
        image = _image([1, 2, 3])
        assert image.address_of(0) == 0x400000
        assert image.address_of(2) == 0x400008
        assert image.word_at_address(0x400004) == 2

    def test_addressing_bounds(self):
        image = _image([1, 2])
        with pytest.raises(ProgramImageError):
            image.address_of(2)
        with pytest.raises(ProgramImageError):
            image.word_at_address(0x400001)
        with pytest.raises(ProgramImageError):
            image.word_at_address(0x400010)

    def test_first_window(self):
        image = _image([1, 2, 3, 4])
        window = image.first(2)
        assert window.words == (1, 2)
        assert window.base_address == image.base_address
        with pytest.raises(ProgramImageError):
            image.first(0)

    def test_instruction_at(self):
        image = _image([encode("lw", rt=8, rs=29, imm=4), 0xFC000000])
        assert image.instruction_at(0).mnemonic == "lw"
        assert image.instruction_at(1) is None

    def test_legal_fraction(self):
        image = _image([0, 0xFC000000])
        assert image.legal_fraction() == 0.5

    def test_disassembly_contains_addresses(self):
        image = _image([0])
        assert "00400000" in image.disassembly()


class TestHistogramAndTable:
    def test_histogram_counts_mnemonics(self):
        words = [
            encode("lw", rt=8, rs=29, imm=0),
            encode("lw", rt=9, rs=29, imm=4),
            encode("sw", rt=8, rs=29, imm=8),
            0xFC000000,  # illegal: skipped
        ]
        histogram = mnemonic_histogram(words)
        assert histogram == {"lw": 2, "sw": 1}

    def test_table_frequencies(self):
        table = FrequencyTable.from_counts("t", {"lw": 6, "sw": 3, "jr": 1})
        assert table.frequency("lw") == 0.6
        assert table.frequency("missing") == 0.0
        assert table.count("sw") == 3
        assert table.total == 10

    def test_ranked_deterministic_ties(self):
        table = FrequencyTable.from_counts("t", {"b": 1, "a": 1, "c": 2})
        assert table.ranked() == [("c", 0.5), ("a", 0.25), ("b", 0.25)]

    def test_most_common_limit(self):
        table = FrequencyTable.from_counts("t", {"a": 3, "b": 2, "c": 1})
        assert [m for m, _ in table.most_common(2)] == ["a", "b"]

    def test_from_image(self):
        words = [encode("lw", rt=8, rs=29, imm=0)] * 3
        table = FrequencyTable.from_image(_image(words))
        assert table.frequency("lw") == 1.0
        assert table.source == "test"

    def test_from_image_with_no_legal_words_rejected(self):
        with pytest.raises(ProgramImageError):
            FrequencyTable.from_image(_image([0xFC000000]))

    def test_empty_counts_rejected(self):
        with pytest.raises(ProgramImageError):
            FrequencyTable.from_counts("t", {})

    def test_merged_tables_pool_counts(self):
        a = FrequencyTable.from_counts("a", {"lw": 2})
        b = FrequencyTable.from_counts("b", {"lw": 1, "sw": 1})
        merged = a.merged_with(b)
        assert merged.count("lw") == 3
        assert merged.total == 4


class TestPowerLawFit:
    def test_perfect_power_law(self):
        counts = {f"op{rank}": round(100000 / rank**2) for rank in range(1, 11)}
        table = FrequencyTable.from_counts("zipf", counts)
        alpha, r_squared = power_law_fit(table)
        assert alpha == pytest.approx(-2.0, abs=0.05)
        assert r_squared > 0.99

    def test_uniform_distribution_is_flat(self):
        table = FrequencyTable.from_counts("flat", {f"op{i}": 5 for i in range(8)})
        alpha, _ = power_law_fit(table)
        assert alpha == pytest.approx(0.0, abs=1e-9)

    def test_too_few_mnemonics_rejected(self):
        table = FrequencyTable.from_counts("tiny", {"a": 1, "b": 1})
        with pytest.raises(ProgramImageError):
            power_law_fit(table)
