"""Tests for the MiniLang compiler, executed on the CPU simulator."""

from __future__ import annotations

import pytest

from repro.program.compiler import CompileError, compile_source, compile_to_assembly
from repro.sim.cpu import Cpu
from repro.sim.mem_iface import FlatMemory

BASE = 0x400000


def run_program(source: str, max_steps: int = 400_000):
    program = compile_source(source, base_address=BASE)
    memory = FlatMemory()
    memory.load_image(program.words, BASE)
    cpu = Cpu(memory, entry_pc=BASE, text_range=(BASE, BASE + 4 * len(program.words)))
    return cpu.run(max_steps=max_steps)


class TestArithmetic:
    def test_return_value_becomes_exit_code(self):
        assert run_program("fn main() { return 7; }").exit_code == 7

    def test_implicit_return_zero(self):
        assert run_program("fn main() { let x = 5; }").exit_code == 0

    @pytest.mark.parametrize(
        "expression,expected",
        [
            ("1 + 2 * 3", 7),
            ("(1 + 2) * 3", 9),
            ("10 - 3 - 2", 5),
            ("100 / 7", 14),
            ("100 % 7", 2),
            ("1 << 5", 32),
            ("64 >> 3", 8),
            ("12 & 10", 8),
            ("12 | 10", 14),
            ("12 ^ 10", 6),
            ("-5 + 8", 3),
            ("!0", 1),
            ("!7", 0),
            ("~0 & 255", 255),
            ("3 < 5", 1),
            ("5 <= 5", 1),
            ("5 < 5", 0),
            ("7 > 2", 1),
            ("7 >= 8", 0),
            ("4 == 4", 1),
            ("4 != 4", 0),
            ("1 && 2", 1),
            ("1 && 0", 0),
            ("0 || 3", 1),
            ("0 || 0", 0),
        ],
    )
    def test_expression_evaluation(self, expression, expected):
        assert run_program(f"fn main() {{ return {expression}; }}").exit_code == expected

    def test_negative_division_truncates_toward_zero(self):
        assert run_program("fn main() { return (0 - 7) / 2; }").exit_code == -3


class TestControlFlow:
    def test_if_else(self):
        source = """
        fn main() {
            let x = 10;
            if (x > 5) { return 1; } else { return 2; }
        }
        """
        assert run_program(source).exit_code == 1

    def test_while_loop_sum(self):
        source = """
        fn main() {
            let total = 0;
            let i = 1;
            while (i <= 100) {
                total = total + i;
                i = i + 1;
            }
            return total;
        }
        """
        assert run_program(source).exit_code == 5050

    def test_nested_loops(self):
        source = """
        fn main() {
            let count = 0;
            let i = 0;
            while (i < 5) {
                let j = 0;
                while (j < 4) { count = count + 1; j = j + 1; }
                i = i + 1;
            }
            return count;
        }
        """
        assert run_program(source).exit_code == 20


class TestFunctions:
    def test_recursion(self):
        source = """
        fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { return fib(12); }
        """
        assert run_program(source).exit_code == 144

    def test_four_arguments(self):
        source = """
        fn sum4(a, b, c, d) { return a + b + c + d; }
        fn main() { return sum4(1, 2, 3, 4); }
        """
        assert run_program(source).exit_code == 10

    def test_mutual_recursion(self):
        source = """
        fn is_even(n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        fn is_odd(n) { if (n == 0) { return 0; } return is_even(n - 1); }
        fn main() { return is_even(10) * 10 + is_odd(7); }
        """
        assert run_program(source).exit_code == 11

    def test_print_syscall_output(self):
        result = run_program("fn main() { print(3); print(42); return 0; }")
        assert result.output == (3, 42)

    def test_memory_builtin_roundtrip(self):
        source = """
        fn main() {
            store(268500992, 1234);
            return load(268500992);
        }
        """
        assert run_program(source).exit_code == 1234


class TestCompileErrors:
    def test_undefined_variable(self):
        with pytest.raises(CompileError, match="undefined variable"):
            compile_source("fn main() { return x; }")

    def test_undefined_function(self):
        with pytest.raises(CompileError, match="undefined function"):
            compile_source("fn main() { return nope(); }")

    def test_wrong_arity(self):
        with pytest.raises(CompileError, match="takes"):
            compile_source("fn f(a) { return a; } fn main() { return f(); }")

    def test_missing_main(self):
        with pytest.raises(CompileError, match="main"):
            compile_source("fn f() { return 1; }")

    def test_duplicate_functions(self):
        with pytest.raises(CompileError, match="duplicate"):
            compile_source("fn f() { return 1; } fn f() { return 2; } fn main() { return 0; }")

    def test_too_many_params(self):
        with pytest.raises(CompileError, match="parameters"):
            compile_source("fn f(a, b, c, d, e) { return 0; } fn main() { return 0; }")

    def test_syntax_error(self):
        with pytest.raises(CompileError, match="expected"):
            compile_source("fn main() { return 1 }")

    def test_bad_character(self):
        with pytest.raises(CompileError, match="unexpected character"):
            compile_source("fn main() { return `; }")

    def test_empty_program(self):
        with pytest.raises(CompileError, match="no functions"):
            compile_source("   ")


class TestGeneratedAssembly:
    def test_assembly_is_textual_mips(self):
        assembly = compile_to_assembly("fn main() { return 1; }")
        assert "jal main" in assembly
        assert "jr $ra" in assembly
        assert "syscall" in assembly

    def test_comments_supported(self):
        source = """
        // leading comment
        fn main() { return 3; } // trailing
        """
        assert run_program(source).exit_code == 3
