"""Tests for benchmark profiles and the synthetic workload generator."""

from __future__ import annotations

import pytest

from repro.isa.decoder import try_decode
from repro.program.profiles import (
    BENCHMARK_NAMES,
    BenchmarkProfile,
    SPEC_PROFILES,
    profile_for,
)
from repro.program.stats import FrequencyTable, power_law_fit
from repro.program.synth import SyntheticProgramGenerator, synthesize_benchmark
from repro.errors import ProgramImageError


class TestProfiles:
    def test_the_five_paper_benchmarks_exist(self):
        assert set(BENCHMARK_NAMES) == {
            "bzip2", "h264ref", "mcf", "perlbench", "povray",
        }

    def test_profile_lookup(self):
        assert profile_for("mcf").name == "mcf"
        with pytest.raises(KeyError, match="available"):
            profile_for("gcc")

    def test_normalization(self):
        for profile in SPEC_PROFILES.values():
            assert sum(profile.normalized().values()) == pytest.approx(1.0)

    def test_lw_dominates_every_profile(self):
        # Fig. 7: lw is ~20% of every benchmark.
        for profile in SPEC_PROFILES.values():
            mix = profile.normalized()
            assert mix["lw"] == max(mix.values())
            assert 0.15 <= mix["lw"] <= 0.30

    def test_povray_is_the_floating_point_benchmark(self):
        assert "mul.d" in SPEC_PROFILES["povray"].mix
        for name in ("bzip2", "mcf", "perlbench", "h264ref"):
            assert "mul.d" not in SPEC_PROFILES[name].mix

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ValueError, match="unknown mnemonics"):
            BenchmarkProfile(name="bad", description="", mix={"frob": 1.0})

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(name="bad", description="", mix={"lw": 0.0})


class TestSynthesizer:
    def test_deterministic_for_fixed_seed(self):
        a = synthesize_benchmark("bzip2", length=256, seed=7)
        b = synthesize_benchmark("bzip2", length=256, seed=7)
        assert a.words == b.words

    def test_different_seeds_differ(self):
        a = synthesize_benchmark("bzip2", length=256, seed=1)
        b = synthesize_benchmark("bzip2", length=256, seed=2)
        assert a.words != b.words

    def test_different_benchmarks_differ(self):
        a = synthesize_benchmark("bzip2", length=256, seed=1)
        b = synthesize_benchmark("mcf", length=256, seed=1)
        assert a.words != b.words

    def test_every_word_is_legal(self):
        image = synthesize_benchmark("povray", length=1024)
        assert all(try_decode(word) is not None for word in image.words)

    def test_requested_length_honoured(self):
        assert len(synthesize_benchmark("mcf", length=500)) == 500

    def test_minimum_length_enforced(self):
        generator = SyntheticProgramGenerator(profile_for("mcf"))
        with pytest.raises(ProgramImageError):
            generator.generate(10)

    def test_crt0_stub_prefix(self):
        # The image must open like startup code: $gp/$sp setup.
        image = synthesize_benchmark("mcf", length=256)
        first = image.instruction_at(0)
        assert first.mnemonic == "lui" and first.rt == 28  # $gp

    def test_mix_converges_to_profile(self):
        image = synthesize_benchmark("mcf", length=8192)
        table = FrequencyTable.from_image(image)
        expected = profile_for("mcf").normalized()
        # The head of the distribution should track the profile within
        # a few percentage points (the crt0 stub adds a small bias).
        for mnemonic in ("lw", "addiu", "sw"):
            assert table.frequency(mnemonic) == pytest.approx(
                expected[mnemonic], abs=0.04
            )

    def test_power_law_shape(self):
        image = synthesize_benchmark("perlbench", length=8192)
        alpha, r_squared = power_law_fit(FrequencyTable.from_image(image))
        assert alpha < -1.0
        assert r_squared > 0.6

    def test_branch_targets_inside_image(self):
        image = synthesize_benchmark("h264ref", length=512)
        for index in range(len(image)):
            instruction = image.instruction_at(index)
            if instruction.style.name in ("BRANCH_TWO_REG", "BRANCH_ONE_REG"):
                if instruction.opcode in (0x12, 0x13):
                    continue  # coprocessor branches: no target realism
                target_index = index + 1 + instruction.signed_immediate
                assert 0 <= target_index <= len(image)

    def test_jump_targets_inside_image(self):
        image = synthesize_benchmark("h264ref", length=512)
        low = image.base_address >> 2
        high = (image.base_address + 4 * len(image)) >> 2
        for index in range(len(image)):
            instruction = image.instruction_at(index)
            if instruction.style.name == "JUMP_TARGET":
                assert low <= instruction.target < high

    def test_custom_name_override(self):
        generator = SyntheticProgramGenerator(profile_for("mcf"), seed=3)
        image = generator.generate(64, name="custom")
        assert image.name == "custom"
