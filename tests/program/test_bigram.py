"""Tests for adjacent-mnemonic (bigram) statistics."""

from __future__ import annotations

import pytest

from repro.isa.encoder import encode
from repro.program.image import ProgramImage
from repro.program.stats import BigramTable

LW = encode("lw", rt=8, rs=29, imm=4)
SW = encode("sw", rt=8, rs=29, imm=4)
ADDU = encode("addu", rd=8, rs=9, rt=10)
ILLEGAL = 0xFC000000


def image_of(words, name="t"):
    return ProgramImage.from_words(name, words, base_address=0x400000)


class TestPairCounting:
    def test_counts_adjacent_pairs(self):
        table = BigramTable.from_image(image_of([LW, ADDU, SW, LW, ADDU]))
        assert table.pair_count("lw", "addu") == 2
        assert table.pair_count("addu", "sw") == 1
        assert table.pair_count("sw", "lw") == 1
        assert table.pair_count("sw", "addu") == 0

    def test_illegal_words_break_the_chain(self):
        table = BigramTable.from_image(image_of([LW, ILLEGAL, SW]))
        assert table.pair_count("lw", "sw") == 0
        assert sum(table.pair_counts.values()) == 0

    def test_prefix_totals_consistent(self):
        table = BigramTable.from_image(image_of([LW, ADDU, LW, SW, LW, ADDU]))
        assert table.prefix_totals["lw"] == table.pair_count(
            "lw", "addu"
        ) + table.pair_count("lw", "sw")

    def test_unigram_attached(self):
        table = BigramTable.from_image(image_of([LW, LW, SW, ADDU]))
        assert table.unigram.frequency("lw") == 0.5


class TestConditional:
    def test_seen_pair_dominates(self):
        table = BigramTable.from_image(image_of([LW, ADDU] * 20))
        # After lw, addu is (almost) certain.
        assert table.conditional("addu", "lw") > 0.9
        assert table.conditional("sw", "lw") < 0.05

    def test_unseen_prefix_falls_back_to_unigram(self):
        table = BigramTable.from_image(image_of([LW, ADDU, LW, ADDU]))
        # "jr" never appears as a prefix: P(next | jr) = unigram(next).
        assert table.conditional("lw", "jr") == pytest.approx(
            table.unigram.frequency("lw")
        )

    def test_conditionals_sum_to_at_most_one_ish(self):
        table = BigramTable.from_image(image_of([LW, ADDU, SW, LW, SW, ADDU]))
        total = sum(
            table.conditional(nxt, "lw")
            for nxt in table.unigram.counts
        )
        assert total == pytest.approx(1.0, abs=0.05)

    def test_smoothing_keeps_probabilities_positive(self):
        table = BigramTable.from_image(image_of([LW, ADDU] * 5 + [SW]))
        assert table.conditional("sw", "lw") > 0.0


class TestBigramRanker:
    def test_prefers_contextually_likely_candidate(self):
        from repro.core.rankers import BigramContextRanker
        from repro.core.sideinfo import RecoveryContext

        # A program where sw always follows addu, lw never does.
        table = BigramTable.from_image(
            image_of([LW, ADDU, SW] * 30)
        )
        context = RecoveryContext.for_instructions(
            table.unigram, bigram_table=table,
            preceding_mnemonic="addu", following_mnemonic="lw",
        )
        ranker = BigramContextRanker()
        assert ranker.score(SW, context) > ranker.score(ADDU, context)

    def test_degrades_to_unigram_without_table(self):
        from repro.core.rankers import BigramContextRanker, FrequencyRanker
        from repro.core.sideinfo import RecoveryContext

        table = BigramTable.from_image(image_of([LW, LW, SW, ADDU]))
        context = RecoveryContext.for_instructions(table.unigram)
        assert BigramContextRanker().score(LW, context) == FrequencyRanker().score(
            LW, context
        )

    def test_illegal_scores_zero(self):
        from repro.core.rankers import BigramContextRanker
        from repro.core.sideinfo import RecoveryContext

        assert BigramContextRanker().score(ILLEGAL, RecoveryContext()) == 0.0

    def test_unknown_neighbours_use_unigram_forward_only(self):
        from repro.core.rankers import BigramContextRanker
        from repro.core.sideinfo import RecoveryContext

        table = BigramTable.from_image(image_of([LW, ADDU] * 10))
        context = RecoveryContext.for_instructions(
            table.unigram, bigram_table=table
        )
        score = BigramContextRanker().score(LW, context)
        assert score == pytest.approx(table.unigram.frequency("lw"))
