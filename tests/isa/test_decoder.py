"""Tests for the MIPS-I decoder: the paper's legality oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IllegalInstructionError
from repro.isa.decoder import decode, is_legal, mnemonic_of, try_decode
from repro.isa.encoder import encode
from repro.isa.opcodes import (
    COP1_FMTS,
    INSTRUCTION_SPECS,
    LEGAL_OPCODES,
    REGIMM_SELECTORS,
    SPECIAL_FUNCTS,
)


class TestPaperLegalityCounts:
    """The three counts reported in Sec. III-B must hold exactly."""

    def test_41_of_64_opcodes(self):
        legal = [
            opcode for opcode in range(64)
            if any(
                is_legal((opcode << 26) | low)
                for low in (0x00000000, 0x00000020, 0x02108020, 0x10000000)
            )
        ]
        assert len(LEGAL_OPCODES) == 41
        assert set(legal) <= LEGAL_OPCODES

    def test_37_of_64_functs(self):
        legal_functs = [
            funct for funct in range(64) if is_legal((0x00 << 26) | funct)
        ]
        assert len(legal_functs) == len(SPECIAL_FUNCTS) == 37

    def test_3_of_32_fmts(self):
        legal_fmts = [
            fmt for fmt in range(32)
            if any(
                is_legal((0x11 << 26) | (fmt << 21) | funct)
                for funct in range(64)
            )
        ]
        assert legal_fmts == sorted(COP1_FMTS) == [0x10, 0x11, 0x14]


class TestGoldenEncodings:
    """Known words from real MIPS toolchains must decode correctly."""

    @pytest.mark.parametrize(
        "word,mnemonic",
        [
            (0x00000000, "sll"),       # canonical nop
            (0x03E00008, "jr"),        # jr $ra
            (0x8FBF0018, "lw"),        # lw $ra, 24($sp)
            (0xAFBF0018, "sw"),        # sw $ra, 24($sp)
            (0x27BDFFE8, "addiu"),     # addiu $sp, $sp, -24
            (0x3C1C0FC0, "lui"),       # lui $gp, 0xfc0
            (0x0C100012, "jal"),       # jal 0x400048
            (0x10400003, "beq"),       # beq $v0, $zero, +3
            (0x1440FFFD, "bne"),       # bne $v0, $zero, -3
            (0x00851021, "addu"),      # addu $v0, $a0, $a1
            (0x00852022, "sub"),       # sub $a0, $a0, $a1
            (0x0000000C, "syscall"),
            (0x0000000D, "break"),
            (0x46000000, "add.s"),     # add.s $f0, $f0, $f0
            (0x46200002, "mul.d"),     # mul.d $f0, $f0, $f0
            (0x04110001, "bgezal"),    # bgezal $zero, +1 (bal)
            (0xC4C40000, "lwc1"),      # lwc1 $f4, 0($a2)
        ],
    )
    def test_decodes_to(self, word, mnemonic):
        assert mnemonic_of(word) == mnemonic

    @pytest.mark.parametrize(
        "word",
        [
            0x70000000,  # opcode 0x1C (SPECIAL2, not in MIPS-I table)
            0xFC000000,  # opcode 0x3F
            0x00000001,  # SPECIAL funct 0x01 (movci, excluded)
            0x0000003F,  # SPECIAL funct 0x3F
            0x04140000,  # REGIMM rt=0x14
            0x47E00000,  # COP1 fmt=0x1F
            0x46800000,  # COP1 fmt=W funct=add (no FP arith on W)
            0x44600000,  # COP0 rs=0x03
        ],
    )
    def test_illegal_words(self, word):
        assert not is_legal(word)
        assert try_decode(word) is None
        with pytest.raises(IllegalInstructionError):
            decode(word)

    def test_illegality_reason_is_specific(self):
        with pytest.raises(IllegalInstructionError, match="reserved opcode"):
            decode(0xFC000000)
        with pytest.raises(IllegalInstructionError, match="SPECIAL funct"):
            decode(0x00000001)
        with pytest.raises(IllegalInstructionError, match="REGIMM"):
            decode(0x04140000)
        with pytest.raises(IllegalInstructionError, match="COP1 fmt"):
            decode(0x47E00000)


class TestDecodeProperties:
    def test_word_range_checked(self):
        with pytest.raises(ValueError):
            is_legal(1 << 32)
        with pytest.raises(ValueError):
            try_decode(-1)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=300)
    def test_decode_never_crashes_and_is_consistent(self, word):
        instruction = try_decode(word)
        assert is_legal(word) == (instruction is not None)
        if instruction is not None:
            assert instruction.word == word
            assert instruction.mnemonic in INSTRUCTION_SPECS

    @given(st.sampled_from(sorted(INSTRUCTION_SPECS)), st.data())
    @settings(max_examples=200)
    def test_encode_decode_roundtrip_all_mnemonics(self, mnemonic, data):
        registers = st.integers(0, 31)
        word = encode(
            mnemonic,
            rs=data.draw(registers),
            rt=data.draw(registers),
            rd=data.draw(registers),
            shamt=data.draw(st.integers(0, 31)),
            imm=data.draw(st.integers(0, 0xFFFF)),
            target=data.draw(st.integers(0, 0x3FFFFFF)),
            fd=data.draw(registers),
            fs=data.draw(registers),
            ft=data.draw(registers),
        )
        decoded = try_decode(word)
        assert decoded is not None
        assert decoded.mnemonic == mnemonic

    def test_regimm_selectors_all_decode(self):
        for rt, (mnemonic, _) in REGIMM_SELECTORS.items():
            word = (0x01 << 26) | (rt << 16)
            assert mnemonic_of(word) == mnemonic

    def test_operand_fields_never_affect_legality(self):
        # The paper's key structural fact: register/immediate bits can
        # take any value without making an instruction illegal.
        base = encode("lw", rt=8, rs=29, imm=4)
        for immediate in (0, 1, 0x7FFF, 0x8000, 0xFFFF):
            for rt in (0, 15, 31):
                word = (base & 0xFC000000) | (29 << 21) | (rt << 16) | immediate
                assert is_legal(word)

    def test_instruction_field_accessors(self):
        instruction = decode(0x8FBF0018)  # lw $ra, 24($sp)
        assert instruction.opcode == 0x23
        assert instruction.rs == 29
        assert instruction.rt == 31
        assert instruction.immediate == 24
        assert instruction.signed_immediate == 24
        assert not instruction.is_nop

    def test_nop_flag(self):
        assert decode(0).is_nop


class TestExhaustiveDiscriminatorSpaces:
    """Sweep every discriminator sub-space and compare against the
    tables, so no encoding is accidentally legal or illegal."""

    def test_all_special_functs(self):
        for funct in range(64):
            word = funct  # opcode 0, all operand fields zero
            assert is_legal(word) == (funct in SPECIAL_FUNCTS), funct

    def test_all_regimm_selectors(self):
        for rt in range(32):
            word = (0x01 << 26) | (rt << 16)
            assert is_legal(word) == (rt in REGIMM_SELECTORS), rt

    def test_all_cop1_fmt_funct_combinations(self):
        from repro.isa.opcodes import COP1_FUNCTS_BY_FMT

        for fmt in range(32):
            for funct in range(64):
                word = (0x11 << 26) | (fmt << 21) | funct
                expected = (
                    fmt in COP1_FUNCTS_BY_FMT
                    and funct in COP1_FUNCTS_BY_FMT[fmt]
                )
                assert is_legal(word) == expected, (fmt, funct)

    def test_all_cop0_rs_selectors(self):
        from repro.isa.opcodes import COP0_CO_FUNCTS, COP0_TRANSFER_RS

        for rs in range(32):
            for funct in (0x00, 0x01, 0x08, 0x10, 0x3F):
                word = (0x10 << 26) | (rs << 21) | funct
                if rs in COP0_TRANSFER_RS:
                    # Transfers (mfc0/mtc0) select on rs alone; the
                    # funct bits are don't-cares in this model.
                    expected = True
                elif rs & 0x10:
                    expected = funct in COP0_CO_FUNCTS
                else:
                    expected = False
                assert is_legal(word) == expected, (rs, funct)

    def test_all_copz_rs_selectors(self):
        from repro.isa.opcodes import (
            COPZ_BRANCH_RS,
            COPZ_BRANCH_RT,
            COPZ_TRANSFER_RS,
        )

        for opcode in (0x12, 0x13):
            for rs in range(32):
                for rt in (0, 1, 2, 31):
                    word = (opcode << 26) | (rs << 21) | (rt << 16)
                    if rs in COPZ_TRANSFER_RS:
                        expected = True
                    elif rs == COPZ_BRANCH_RS:
                        expected = rt in COPZ_BRANCH_RT
                    elif rs & 0x10:
                        expected = True  # generic coprocessor operation
                    else:
                        expected = False
                    assert is_legal(word) == expected, (opcode, rs, rt)

    def test_every_primary_opcode_against_table(self):
        from repro.isa.opcodes import PRIMARY_OPCODES

        for opcode in range(64):
            if opcode in (0x00, 0x01, 0x10, 0x11, 0x12, 0x13):
                continue  # sub-field-selected families, covered above
            word = opcode << 26
            assert is_legal(word) == (opcode in PRIMARY_OPCODES), opcode
