"""Tests for the disassembler: rendering and reassembly fidelity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.isa.decoder import decode, try_decode
from repro.isa.disassembler import (
    disassemble,
    disassemble_words,
    render_instruction,
)
from repro.isa.encoder import encode
from repro.isa.opcodes import INSTRUCTION_SPECS


class TestRendering:
    @pytest.mark.parametrize(
        "word,text",
        [
            (0x00000000, "nop"),
            (0x03E00008, "jr $ra"),
            (0x8FBF0018, "lw $ra, 24($sp)"),
            (0x27BDFFE8, "addiu $sp, $sp, -24"),
            (0x00851021, "addu $v0, $a0, $a1"),
            (0x0000000C, "syscall"),
        ],
    )
    def test_known_renderings(self, word, text):
        assert render_instruction(decode(word)) == text

    def test_branch_with_pc_shows_absolute_address(self):
        word = encode("beq", rs=4, rt=5, imm=3)
        text = render_instruction(decode(word), pc=0x400000)
        assert "0x400010" in text

    def test_branch_without_pc_shows_offset(self):
        word = encode("bne", rs=4, rt=5, imm=-2)
        assert render_instruction(decode(word)).endswith("-2")

    def test_jump_with_pc(self):
        word = encode("jal", target=0x100010 >> 2)
        text = render_instruction(decode(word), pc=0x400000)
        assert text == "jal 0x100010"

    def test_fp_registers_rendered(self):
        word = encode("add.s", fd=2, fs=4, ft=6)
        assert render_instruction(decode(word)) == "add.s $f2, $f4, $f6"

    def test_logic_immediates_in_hex(self):
        word = encode("andi", rt=8, rs=9, imm=0xFF)
        assert "0xff" in render_instruction(decode(word))


class TestBulkDisassembly:
    def test_illegal_words_rendered_as_data(self):
        lines = list(disassemble_words([0xFC000000], base_address=0))
        assert lines[0][2] == ".word 0xfc000000"

    def test_addresses_advance_by_4(self):
        entries = list(disassemble_words([0, 0, 0], base_address=0x400000))
        assert [address for address, _, _ in entries] == [
            0x400000, 0x400004, 0x400008,
        ]

    def test_disassemble_text_format(self):
        text = disassemble([0x03E00008], base_address=0x400000)
        assert text == "00400000:  03e00008  jr $ra"


class TestReassemblyRoundtrip:
    @given(st.sampled_from(sorted(INSTRUCTION_SPECS)), st.data())
    @settings(max_examples=150)
    def test_render_assemble_roundtrip(self, mnemonic, data):
        """Disassembled text must reassemble to the identical word.

        Branches/jumps are rendered with raw offsets (no pc), which the
        assembler accepts as numeric operands, so the roundtrip is
        exact for every mnemonic except the COP operations whose
        operand fields are don't-cares.
        """
        registers = st.integers(0, 31)
        word = encode(
            mnemonic,
            rs=data.draw(registers),
            rt=data.draw(registers),
            rd=data.draw(registers),
            shamt=data.draw(st.integers(0, 31)),
            imm=data.draw(st.integers(0, 0xFFFF)),
            target=data.draw(st.integers(0, 0x3FFFFF)) * 4 >> 2,
            fd=data.draw(registers),
            fs=data.draw(registers),
            ft=data.draw(registers),
        )
        instruction = try_decode(word)
        assert instruction is not None
        text = render_instruction(instruction)
        if instruction.style.name in ("COP_OPERATION", "NO_OPERANDS"):
            # Operand fields of these encodings are don't-cares that
            # the renderer legitimately drops; compare mnemonic only.
            reassembled = assemble(text).words[0]
            assert try_decode(reassembled).mnemonic == instruction.mnemonic
            return
        if instruction.is_nop:
            assert text == "nop"
            return
        if instruction.style.name == "JUMP_TARGET":
            # Rendered as an absolute address without pc context; skip
            # reassembly (it needs the same pc) but check the format.
            assert text.startswith(("j 0x", "jal 0x"))
            return
        reassembled = assemble(text).words[0]
        assert reassembled == word, (text, hex(word), hex(reassembled))
