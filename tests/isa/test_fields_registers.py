"""Tests for instruction bit fields and the register ABI."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import fields
from repro.isa.registers import (
    ABI_CLASSES,
    NUM_REGISTERS,
    REGISTER_NAMES,
    register_name,
    register_number,
)

# sw $a1, 4($a0): opcode=0x2B rs=4 rt=5 imm=4
_SW_WORD = (0x2B << 26) | (4 << 21) | (5 << 16) | 4
# add $t0, $t1, $t2: funct=0x20 rs=9 rt=10 rd=8
_ADD_WORD = (9 << 21) | (10 << 16) | (8 << 11) | 0x20


class TestFieldExtraction:
    def test_opcode(self):
        assert fields.opcode_of(_SW_WORD) == 0x2B
        assert fields.opcode_of(_ADD_WORD) == 0

    def test_registers(self):
        assert fields.rs_of(_SW_WORD) == 4
        assert fields.rt_of(_SW_WORD) == 5
        assert fields.rd_of(_ADD_WORD) == 8

    def test_funct_and_shamt(self):
        assert fields.funct_of(_ADD_WORD) == 0x20
        assert fields.shamt_of(_ADD_WORD) == 0

    def test_immediates(self):
        assert fields.immediate_of(_SW_WORD) == 4
        negative = (0x23 << 26) | 0xFFFC  # lw off = -4
        assert fields.immediate_of(negative) == 0xFFFC
        assert fields.signed_immediate(negative) == -4

    def test_target(self):
        word = (0x02 << 26) | 0x3FFFFFF
        assert fields.target_of(word) == 0x3FFFFFF

    def test_with_field(self):
        word = fields.with_field(0, "opcode", 0x23)
        assert fields.opcode_of(word) == 0x23

    @given(st.integers(0, 2**32 - 1))
    def test_fields_partition_word(self, word):
        rebuilt = (
            (fields.opcode_of(word) << 26)
            | (fields.rs_of(word) << 21)
            | (fields.rt_of(word) << 16)
            | (fields.rd_of(word) << 11)
            | (fields.shamt_of(word) << 6)
            | fields.funct_of(word)
        )
        assert rebuilt == word

    def test_field_widths(self):
        assert fields.FIELDS["opcode"].width == 6
        assert fields.FIELDS["rs"].width == 5
        assert fields.FIELDS["immediate"].width == 16
        assert fields.FIELDS["target"].width == 26

    def test_msb_first_positions(self):
        assert fields.FIELDS["opcode"].msb_first_positions() == (0, 1, 2, 3, 4, 5)
        assert fields.FIELDS["funct"].msb_first_positions() == (
            26, 27, 28, 29, 30, 31,
        )

    def test_decoding_field_positions(self):
        positions = fields.DECODING_FIELD_POSITIONS
        # opcode (6) + funct (6) + fmt (5) = 17 distinct positions.
        assert len(positions) == 17
        assert {0, 5, 26, 31, 6, 10} <= positions
        assert 15 not in positions


class TestRegisters:
    def test_name_table_complete(self):
        assert len(REGISTER_NAMES) == NUM_REGISTERS == 32

    def test_roundtrip_all(self):
        for number in range(32):
            assert register_number(register_name(number)) == number

    def test_numeric_aliases(self):
        assert register_number("$8") == 8
        assert register_number("$31") == 31
        assert register_number("$s8") == 30

    def test_named_registers(self):
        assert register_number("$zero") == 0
        assert register_number("$sp") == 29
        assert register_number("$ra") == 31
        assert register_number("v0") == 2  # missing $ accepted

    def test_unknown_register_rejected(self):
        with pytest.raises(ValueError):
            register_number("$bogus")

    def test_out_of_range_number_rejected(self):
        with pytest.raises(ValueError):
            register_name(32)

    def test_abi_classes_partition_registers(self):
        all_registers = sorted(
            register for group in ABI_CLASSES.values() for register in group
        )
        assert all_registers == list(range(32))
