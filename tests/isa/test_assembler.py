"""Tests for the two-pass assembler and pseudo-instruction expansion."""

from __future__ import annotations

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble
from repro.isa.decoder import decode, mnemonic_of
from repro.isa.encoder import encode


class TestBasicAssembly:
    def test_single_instruction(self):
        program = assemble("addu $t0, $t1, $t2")
        assert program.words == [encode("addu", rd=8, rs=9, rt=10)]

    def test_comments_and_blank_lines_ignored(self):
        program = assemble(
            """
            # a comment
            addu $t0, $t1, $t2   # trailing comment

            """
        )
        assert len(program.words) == 1

    def test_memory_operands(self):
        program = assemble("lw $ra, 24($sp)\nsw $a0, -8($fp)")
        assert program.words[0] == 0x8FBF0018
        assert decode(program.words[1]).signed_immediate == -8

    def test_word_directive(self):
        program = assemble(".word 0xdeadbeef, 42")
        assert program.words == [0xDEADBEEF, 42]

    def test_shift_and_jump_register(self):
        program = assemble("sll $t0, $t0, 2\njr $ra\njalr $t9")
        assert mnemonic_of(program.words[0]) == "sll"
        assert decode(program.words[2]).rd == 31  # jalr default link reg

    def test_fp_instructions(self):
        program = assemble("add.s $f0, $f2, $f4\nc.eq.d $f6, $f8\nlwc1 $f4, 8($a0)")
        assert mnemonic_of(program.words[0]) == "add.s"
        assert mnemonic_of(program.words[1]) == "c.eq.d"
        assert decode(program.words[2]).rt == 4


class TestLabelsAndBranches:
    def test_backward_branch_offset(self):
        program = assemble(
            """
            loop:
                addiu $t0, $t0, -1
                bnez $t0, loop
            """
        )
        branch = decode(program.words[1])
        # Target = loop = pc+4 + offset*4 -> offset = -2.
        assert branch.signed_immediate == -2

    def test_forward_branch_offset(self):
        program = assemble(
            """
                beq $a0, $a1, done
                nop
                nop
            done:
                jr $ra
            """
        )
        assert decode(program.words[0]).signed_immediate == 2

    def test_jump_to_label(self):
        program = assemble(
            """
            main:
                j end
                nop
            end:
                jr $ra
            """,
            base_address=0x400000,
        )
        jump = decode(program.words[0])
        assert jump.target == (0x400008 >> 2)

    def test_label_on_same_line(self):
        program = assemble("start: addiu $v0, $zero, 1")
        assert program.labels["start"] == 0
        assert len(program.words) == 1

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate label"):
            assemble("a:\na:\nnop")

    def test_unknown_branch_target_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("beq $a0, $a1, nowhere")

    def test_address_of(self):
        program = assemble("nop\nx: nop", base_address=0x100)
        assert program.address_of("x") == 0x104
        with pytest.raises(AssemblerError):
            program.address_of("missing")


class TestPseudoInstructions:
    def test_nop(self):
        assert assemble("nop").words == [0]

    def test_move(self):
        assert assemble("move $a0, $v0").words == [
            encode("addu", rd=4, rs=2, rt=0)
        ]

    def test_li_small_positive(self):
        assert assemble("li $t0, 42").words == [
            encode("addiu", rt=8, rs=0, imm=42)
        ]

    def test_li_negative(self):
        word = assemble("li $t0, -5").words[0]
        assert decode(word).signed_immediate == -5

    def test_li_16bit_unsigned(self):
        assert assemble("li $t0, 0xabcd").words == [
            encode("ori", rt=8, rs=0, imm=0xABCD)
        ]

    def test_li_32bit_expands_to_lui_ori(self):
        words = assemble("li $t0, 0x12345678").words
        assert len(words) == 2
        assert mnemonic_of(words[0]) == "lui"
        assert mnemonic_of(words[1]) == "ori"
        assert decode(words[0]).immediate == 0x1234
        assert decode(words[1]).immediate == 0x5678

    def test_li_expansion_keeps_labels_consistent(self):
        program = assemble(
            """
                li $t0, 0x12345678
            after:
                nop
            """
        )
        assert program.labels["after"] == 8  # li took two slots

    def test_branch_pseudos(self):
        program = assemble(
            """
            top:
                b top
                beqz $t0, top
                bnez $t1, top
            """
        )
        assert mnemonic_of(program.words[0]) == "beq"
        assert mnemonic_of(program.words[1]) == "beq"
        assert mnemonic_of(program.words[2]) == "bne"

    def test_neg_and_not(self):
        words = assemble("neg $t0, $t1\nnot $t2, $t3").words
        assert mnemonic_of(words[0]) == "sub"
        assert mnemonic_of(words[1]) == "nor"

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate $t0")


class TestOperandValidation:
    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble("addu $t0, $t1")

    def test_bad_register(self):
        with pytest.raises(AssemblerError):
            assemble("addu $t0, $t1, $zz")

    def test_branch_offset_out_of_range(self):
        with pytest.raises(AssemblerError, match="out of 16-bit range"):
            assemble("beq $a0, $a1, 40000")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError, match="bad memory operand"):
            assemble("lw $t0, t1")

    def test_misaligned_jump_rejected(self):
        with pytest.raises(AssemblerError, match="not aligned"):
            assemble("j 0x401")
