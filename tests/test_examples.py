"""Smoke tests: the shipped examples must run and tell their stories."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys, argv: list[str] | None = None) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example {name}"
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "DUE" in out
        assert "candidate codewords" in out
        assert "correct recovery: True" in out

    def test_data_memory_recovery(self, capsys):
        out = run_example("data_memory_recovery.py", capsys)
        assert "counter" in out and "pointer" in out
        # The heuristic rows must report materially better rates than
        # the random rows; spot check the rendering contains rates.
        assert "0." in out

    def test_fault_tolerant_execution(self, capsys):
        out = run_example("fault_tolerant_execution.py", capsys)
        assert "CRASH" in out
        assert "recovered heuristically" in out
        assert "forked execution" in out

    @pytest.mark.slow
    def test_instruction_memory_recovery(self, capsys):
        out = run_example("instruction_memory_recovery.py", capsys, ["bzip2"])
        assert "filter-and-rank" in out
        assert "recovery rate vs error-pattern index" in out

    def test_code_design_exploration(self, capsys):
        out = run_example("code_design_exploration.py", capsys)
        assert "canonical Hsiao (39,32)" in out
        assert "miscorrected" in out
        assert "DECTED" in out

    def test_riscv_recovery(self, capsys):
        out = run_example("riscv_recovery.py", capsys)
        assert "rv32i" in out or "RV32I" in out
        assert "recovered correctly" in out
