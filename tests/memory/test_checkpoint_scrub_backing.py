"""Tests for checkpointing, scrubbing, page retirement, and clean pages."""

from __future__ import annotations

import pytest

from repro.errors import MemoryFaultError
from repro.memory.backing import CleanPageStore
from repro.memory.checkpoint import CheckpointStore, memory_checkpointer
from repro.memory.faults import FaultInjector
from repro.memory.model import EccMemory
from repro.memory.scrub import PageRetirement, Scrubber


@pytest.fixture()
def memory(code):
    memory = EccMemory(code)
    for index in range(16):
        memory.write(0x1000 + 4 * index, index * 1111)
    return memory


class TestCheckpointStore:
    def test_rollback_restores_state(self):
        state = {"value": 1}
        store = CheckpointStore(
            capture=lambda: dict(state),
            restore=lambda snapshot: (state.clear(), state.update(snapshot)),
        )
        store.checkpoint()
        state["value"] = 99
        store.rollback()
        assert state["value"] == 1
        assert store.rollback_count == 1

    def test_rollback_consumes_checkpoint(self):
        store = CheckpointStore(capture=lambda: 0, restore=lambda s: None)
        store.checkpoint()
        assert store.has_checkpoint()
        store.rollback()
        assert not store.has_checkpoint()
        with pytest.raises(MemoryFaultError):
            store.rollback()

    def test_capacity_evicts_oldest(self):
        captured = []
        store = CheckpointStore(
            capture=lambda: len(captured),
            restore=captured.append,
            capacity=2,
        )
        for _ in range(3):
            store.checkpoint()
        assert store.depth == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            CheckpointStore(capture=lambda: 0, restore=lambda s: None, capacity=0)

    def test_memory_checkpointer_preserves_injected_faults(self, memory):
        store = memory_checkpointer(memory)
        FaultInjector(memory).inject_at(0x1000, [3])  # latent CE
        store.checkpoint()
        memory.write(0x1000, 0)  # overwrite
        store.rollback()
        # The snapshot captured the *corrupted* codeword, as a DRAM
        # image copy would.
        assert memory.read(0x1000).status.name == "CORRECTED"


class TestScrubber:
    def test_scrub_fixes_correctable_errors(self, memory):
        injector = FaultInjector(memory)
        for index in range(5):
            injector.inject_at(0x1000 + 4 * index, [index])
        report = Scrubber(memory).scrub()
        assert report.words_scanned == 16
        assert report.errors_corrected == 5
        assert report.dues_found == 0
        assert not report.clean

    def test_scrub_prevents_error_accumulation(self, memory):
        injector = FaultInjector(memory)
        scrubber = Scrubber(memory)
        injector.inject_at(0x1000, [0])
        scrubber.scrub()
        injector.inject_at(0x1000, [1])
        scrubber.scrub()
        # Two single-bit faults, separated by a scrub: never a DUE.
        assert memory.read(0x1000).status.name == "OK"

    def test_without_scrub_the_same_faults_accumulate(self, memory):
        injector = FaultInjector(memory)
        injector.inject_at(0x1000, [0])
        injector.inject_at(0x1000, [1])
        result = memory.code.decode(memory.raw_codeword(0x1000))
        assert result.status.name == "DUE"

    def test_scrub_flags_dues_without_crashing(self, memory):
        FaultInjector(memory).inject_at(0x1004, [0, 1])
        report = Scrubber(memory).scrub()
        assert report.dues_found == 1
        scrubber = Scrubber(memory)
        scrubber.scrub()
        assert scrubber.due_addresses == [0x1004]

    def test_second_pass_clean(self, memory):
        injector = FaultInjector(memory)
        injector.inject_at(0x1008, [5])
        scrubber = Scrubber(memory)
        scrubber.scrub()
        assert scrubber.scrub().clean


class TestPageRetirement:
    def test_threshold_retires_page(self):
        retirement = PageRetirement(page_bytes=4096, threshold=2)
        assert not retirement.record_error(0x1000)
        assert retirement.record_error(0x1ffc)  # same page
        assert retirement.is_retired(0x1004)
        assert retirement.retired_pages == {1}

    def test_distinct_pages_counted_separately(self):
        retirement = PageRetirement(threshold=2)
        retirement.record_error(0x0000)
        retirement.record_error(0x1000)
        assert not retirement.retired_pages

    def test_idempotent_after_retirement(self):
        retirement = PageRetirement(threshold=1)
        assert retirement.record_error(0x0000)
        assert not retirement.record_error(0x0004)

    def test_parameter_validation(self):
        with pytest.raises(MemoryFaultError):
            PageRetirement(page_bytes=10)
        with pytest.raises(MemoryFaultError):
            PageRetirement(threshold=0)


class TestCleanPageStore:
    def test_clean_copy_returns_pristine_word(self):
        store = CleanPageStore()
        store.register_region(0x400000, [10, 20, 30])
        assert store.clean_copy(0x400004) == 20

    def test_unmapped_address_returns_none(self):
        store = CleanPageStore()
        assert store.clean_copy(0x1234000) is None

    def test_dirty_page_returns_none(self):
        store = CleanPageStore(page_bytes=4096)
        store.register_region(0x400000, [10, 20, 30])
        store.mark_dirty(0x400008)
        # The whole page dirties, not just the word.
        assert store.clean_copy(0x400000) is None
        assert store.is_dirty(0x400004)

    def test_other_pages_stay_clean(self):
        store = CleanPageStore(page_bytes=4096)
        store.register_region(0x400000, [1] * 2048)  # two pages
        store.mark_dirty(0x400000)
        assert store.clean_copy(0x401000) == 1

    def test_misaligned_registration_rejected(self):
        store = CleanPageStore()
        with pytest.raises(MemoryFaultError):
            store.register_region(0x400002, [1])

    def test_bad_page_size_rejected(self):
        with pytest.raises(MemoryFaultError):
            CleanPageStore(page_bytes=6)
