"""Tests for the ECC memory model and DUE policies."""

from __future__ import annotations

import random

import pytest

from repro.core import RecoveryContext, RecoveryPipeline, SwdEcc
from repro.ecc.code import DecodeStatus
from repro.errors import InjectionError, MemoryFaultError, UncorrectableError
from repro.memory.backing import CleanPageStore
from repro.memory.faults import FaultInjector
from repro.memory.model import EccMemory
from repro.memory.policy import CrashPolicy, HeuristicPolicy, PoisonPolicy


@pytest.fixture()
def memory(code):
    memory = EccMemory(code, CrashPolicy())
    memory.write(0x1000, 0xDEADBEEF)
    memory.write(0x1004, 0x12345678)
    return memory


class TestBasicOperation:
    def test_clean_read(self, memory):
        result = memory.read(0x1000)
        assert result.status is DecodeStatus.OK
        assert result.word == 0xDEADBEEF
        assert not result.poisoned

    def test_stats_counters(self, memory):
        memory.read(0x1000)
        memory.read(0x1004)
        stats = memory.stats.as_dict()
        assert stats["writes"] == 2
        assert stats["reads"] == 2
        assert stats["clean_reads"] == 2

    def test_unmapped_read_rejected(self, memory):
        with pytest.raises(MemoryFaultError, match="unmapped"):
            memory.read(0x2000)

    def test_misaligned_address_rejected(self, memory):
        with pytest.raises(MemoryFaultError):
            memory.write(0x1002, 1)
        with pytest.raises(MemoryFaultError):
            memory.read(0x1001)

    def test_oversized_word_rejected(self, memory, code):
        with pytest.raises(MemoryFaultError):
            memory.write(0x1000, 1 << code.k)

    def test_load_image(self, code):
        memory = EccMemory(code)
        memory.load_image([1, 2, 3], 0x400000)
        assert memory.read(0x400008).word == 3

    def test_single_bit_error_corrected_and_scrubbed(self, memory):
        injector = FaultInjector(memory)
        injector.inject_at(0x1000, [7])
        first = memory.read(0x1000)
        assert first.status is DecodeStatus.CORRECTED
        assert first.word == 0xDEADBEEF
        # The in-line writeback must leave the word clean.
        assert memory.read(0x1000).status is DecodeStatus.OK
        assert memory.stats.corrected_errors == 1


class TestCrashPolicy:
    def test_due_raises(self, memory):
        FaultInjector(memory).inject_at(0x1000, [0, 5])
        with pytest.raises(UncorrectableError) as excinfo:
            memory.read(0x1000)
        assert excinfo.value.address == 0x1000
        assert memory.stats.detected_uncorrectable == 1


class TestPoisonPolicy:
    def test_due_returns_poisoned_word(self, code):
        memory = EccMemory(code, PoisonPolicy(placeholder=0xABCD0123))
        memory.write(0x1000, 7)
        FaultInjector(memory).inject_at(0x1000, [3, 9])
        result = memory.read(0x1000)
        assert result.poisoned
        assert result.word == 0xABCD0123
        assert memory.stats.poisoned_reads == 1


class TestHeuristicPolicy:
    def test_recovers_an_instruction_due(self, code, mcf_image, mcf_table):
        context = RecoveryContext.for_instructions(mcf_table)
        pipeline = RecoveryPipeline(SwdEcc(code, rng=random.Random(0)))
        memory = EccMemory(
            code, HeuristicPolicy(pipeline, lambda address: context)
        )
        memory.load_image(mcf_image.words, mcf_image.base_address)
        # Corrupt a decode field of instruction 40 (post-stub).
        address = mcf_image.base_address + 4 * 40
        FaultInjector(memory).inject_at(address, [0, 3])
        result = memory.read(address)
        assert result.status is DecodeStatus.DUE
        assert result.recovery is not None
        assert memory.stats.heuristic_recoveries == 1
        # The chosen message was re-encoded: subsequent reads are clean.
        again = memory.read(address)
        assert again.status is DecodeStatus.OK
        assert again.word == result.word

    def test_clean_page_reload_wins_over_heuristic(self, code, mcf_image):
        pages = CleanPageStore()
        pages.register_region(mcf_image.base_address, mcf_image.words)
        pipeline = RecoveryPipeline(
            SwdEcc(code, rng=random.Random(0)), page_source=pages
        )
        memory = EccMemory(code, HeuristicPolicy(pipeline))
        memory.load_image(mcf_image.words, mcf_image.base_address)
        address = mcf_image.base_address + 4 * 10
        FaultInjector(memory).inject_at(address, [11, 22])
        result = memory.read(address)
        # Page reload is exact: the word equals the original.
        assert result.word == mcf_image.words[10]
        assert result.recovery is None

    def test_crash_when_heuristic_disabled_and_no_outs(self, code):
        pipeline = RecoveryPipeline(
            SwdEcc(code, rng=random.Random(0)), allow_heuristic=False
        )
        memory = EccMemory(code, HeuristicPolicy(pipeline))
        memory.write(0x1000, 99)
        FaultInjector(memory).inject_at(0x1000, [1, 2])
        with pytest.raises(UncorrectableError):
            memory.read(0x1000)


class TestFaultInjector:
    def test_targeted_injection(self, memory, code):
        injector = FaultInjector(memory)
        pattern = injector.inject_at(0x1000, [0, 38])
        assert pattern.positions == (0, 38)
        assert len(injector.injection_log) == 1

    def test_random_double_bit(self, memory):
        injector = FaultInjector(memory, rng=random.Random(5))
        address, pattern = injector.inject_double_bit()
        assert address in (0x1000, 0x1004)
        assert pattern.weight == 2

    def test_bsc_injection_counts_flips(self, memory):
        injector = FaultInjector(memory, rng=random.Random(1))
        flips = injector.inject_bsc(0.5)
        assert flips > 0
        assert len(injector.injection_log) >= 1

    def test_bsc_zero_probability_no_flips(self, memory):
        injector = FaultInjector(memory, rng=random.Random(1))
        assert injector.inject_bsc(0.0) == 0

    def test_empty_memory_rejected(self, code):
        injector = FaultInjector(EccMemory(code))
        with pytest.raises(MemoryFaultError):
            injector.inject_double_bit()

    def test_pattern_width_must_match(self, memory):
        from repro.ecc.channel import pattern_from_positions

        with pytest.raises(MemoryFaultError):
            memory.corrupt(0x1000, pattern_from_positions((0, 1), 45))


class TestBurstInjection:
    def test_adjacent_burst_is_contiguous(self, memory, code):
        injector = FaultInjector(memory, rng=random.Random(9))
        address, pattern = injector.inject_adjacent_burst()
        assert address in (0x1000, 0x1004)
        first, last = pattern.positions[0], pattern.positions[-1]
        assert pattern.positions == tuple(range(first, last + 1))
        assert pattern.weight in (2, 3)
        assert len(injector.injection_log) == 1

    def test_adjacent_burst_respects_length_override(self, memory):
        injector = FaultInjector(memory, rng=random.Random(9))
        _, pattern = injector.inject_adjacent_burst(
            0x1000, burst_lengths={4: 1.0}
        )
        assert pattern.weight == 4

    def test_adjacent_double_is_corrected_by_daec(self, code):
        from repro.ecc.daec import daec_code

        memory = EccMemory(daec_code())
        memory.write(0x1000, 0xDEADBEEF)
        injector = FaultInjector(memory, rng=random.Random(2))
        injector.inject_adjacent_burst(0x1000, burst_lengths={2: 1.0})
        result = memory.read(0x1000)
        assert result.word == 0xDEADBEEF
        assert result.status is DecodeStatus.CORRECTED


class TestEmptyMemoryInjection:
    """A random-target injector needs at least one mapped word."""

    def test_double_bit_raises_injection_error(self, code):
        injector = FaultInjector(EccMemory(code))
        with pytest.raises(InjectionError, match="empty memory"):
            injector.inject_double_bit()

    def test_adjacent_burst_raises_injection_error(self, code):
        injector = FaultInjector(EccMemory(code))
        with pytest.raises(InjectionError, match="no addresses"):
            injector.inject_adjacent_burst()

    def test_bsc_raises_injection_error(self, code):
        injector = FaultInjector(EccMemory(code))
        with pytest.raises(InjectionError):
            injector.inject_bsc(0.5)

    def test_injection_error_is_a_memory_fault_error(self):
        # Callers that caught MemoryFaultError keep working.
        assert issubclass(InjectionError, MemoryFaultError)

    def test_targeted_injection_still_allowed_to_fail_loudly(self, code):
        # inject_at names its address explicitly; an unmapped target is
        # the memory's unmapped-address error, not an InjectionError.
        injector = FaultInjector(EccMemory(code))
        with pytest.raises(MemoryFaultError):
            injector.inject_at(0x1000, [0, 1])
