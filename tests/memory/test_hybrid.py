"""Tests for the hybrid compressed-DECTED / SECDED memory."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.code import DecodeStatus
from repro.errors import MemoryFaultError, UncorrectableError
from repro.memory.faults import FaultInjector
from repro.memory.hybrid import HybridEccMemory, dected_39_26


@pytest.fixture()
def memory(code):
    return HybridEccMemory(code)


class TestUpgradeCode:
    def test_parameters(self):
        dected = dected_39_26()
        assert (dected.n, dected.k) == (39, 26)
        assert dected.verify_minimum_distance(6)


class TestFormatSelection:
    def test_compressible_words_take_dected(self, memory):
        memory.write(0x1000, 0)            # zero
        memory.write(0x1004, 42)           # small int
        memory.write(0x1008, 0xFFFF_FFF0)  # small negative
        for address in (0x1000, 0x1004, 0x1008):
            assert memory.format_of(address) == "dected"
        assert memory.hybrid_stats.compressed_writes == 3

    def test_dense_words_keep_secded(self, memory):
        memory.write(0x1000, 0x8FBF_0018)  # a typical instruction
        memory.write(0x1004, 0x1234_5678)
        for address in (0x1000, 0x1004):
            assert memory.format_of(address) == "secded"
        assert memory.hybrid_stats.dense_writes == 2

    def test_overwrite_can_change_format(self, memory):
        memory.write(0x1000, 42)
        assert memory.format_of(0x1000) == "dected"
        memory.write(0x1000, 0x12345678)
        assert memory.format_of(0x1000) == "secded"

    def test_format_of_unmapped(self, memory):
        with pytest.raises(MemoryFaultError):
            memory.format_of(0x2000)


class TestRoundtrip:
    @given(st.integers(0, 0xFFFFFFFF))
    @settings(max_examples=120, deadline=None)
    def test_any_word_roundtrips(self, word):
        memory = HybridEccMemory()
        memory.write(0x1000, word)
        result = memory.read(0x1000)
        assert result.status is DecodeStatus.OK
        assert result.word == word


class TestErrorBehaviour:
    def test_double_bit_error_on_compressed_word_is_corrected(self, memory):
        """The headline of the hybrid design: 2-bit errors on
        compressed words are no longer DUEs."""
        memory.write(0x1000, 311)
        FaultInjector(memory).inject_at(0x1000, [0, 20])
        result = memory.read(0x1000)
        assert result.status is DecodeStatus.CORRECTED
        assert result.word == 311
        assert memory.hybrid_stats.dected_corrections == 1
        assert memory.stats.detected_uncorrectable == 0
        # In-line scrub: clean on the next read.
        assert memory.read(0x1000).status is DecodeStatus.OK

    def test_double_bit_error_on_dense_word_is_still_a_due(self, memory):
        memory.write(0x1000, 0x12345678)
        FaultInjector(memory).inject_at(0x1000, [0, 20])
        with pytest.raises(UncorrectableError):  # default crash policy
            memory.read(0x1000)

    def test_triple_error_on_compressed_word_reaches_policy(self, memory):
        memory.write(0x1000, 311)
        FaultInjector(memory).inject_at(0x1000, [0, 10, 20])
        with pytest.raises(UncorrectableError):
            memory.read(0x1000)

    def test_single_bit_errors_transparent_in_both_formats(self, memory):
        memory.write(0x1000, 311)
        memory.write(0x1004, 0x12345678)
        injector = FaultInjector(memory)
        injector.inject_at(0x1000, [7])
        injector.inject_at(0x1004, [7])
        assert memory.read(0x1000).word == 311
        assert memory.read(0x1004).word == 0x12345678
        assert memory.stats.corrected_errors == 2

    def test_exhaustive_double_bit_on_compressed_word(self, memory):
        """Every one of the 741 double-bit patterns on a compressed
        word must be corrected deterministically."""
        from repro.ecc.channel import double_bit_patterns

        value = 0xFFFF_FFC0  # sign-extended-8: compressible
        for pattern in double_bit_patterns(39):
            memory.write(0x1000, value)
            memory.corrupt(0x1000, pattern)
            result = memory.read(0x1000)
            assert result.status is DecodeStatus.CORRECTED, pattern
            assert result.word == value


class TestMixedWorkload:
    def test_statistics_over_realistic_page(self, code):
        rng = random.Random(0)
        memory = HybridEccMemory(code)
        values = []
        for index in range(256):
            if rng.random() < 0.6:
                value = rng.randint(0, 255)         # compressible
            else:
                value = rng.getrandbits(32)          # probably dense
            values.append(value)
            memory.write(0x1000 + 4 * index, value)
        assert 0.4 <= memory.hybrid_stats.compressed_fraction <= 0.9
        for index, value in enumerate(values):
            assert memory.read(0x1000 + 4 * index).word == value
