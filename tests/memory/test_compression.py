"""Tests for frequent-pattern compression (the Sec. III-C alternative)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryFaultError
from repro.memory.compression import (
    DECTED_PAYLOAD_BITS,
    compress_word,
    compressed_bits,
    decompress_word,
    fits_stronger_code,
)


class TestClassification:
    @pytest.mark.parametrize(
        "word,name,bits",
        [
            (0x0000_0000, "zero", 3),
            (0x0000_0007, "sign-extended-4", 7),
            (0xFFFF_FFF9, "sign-extended-4", 7),       # -7
            (0x0000_007F, "sign-extended-8", 11),
            (0xFFFF_FF80, "sign-extended-8", 11),      # -128
            (0x0000_7FFF, "sign-extended-16", 19),
            (0xFFFF_8000, "sign-extended-16", 19),     # -32768
            (0x1234_0000, "halfword-low-zero", 19),
            (0x0042_FFB0, "two-sign-extended-halves", 19),
            (0xABAB_ABAB, "repeated-byte", 11),
            (0x1234_5678, "uncompressed", 35),
        ],
    )
    def test_known_classes(self, word, name, bits):
        compressed = compress_word(word)
        assert compressed.pattern.name == name
        assert compressed.total_bits == bits
        assert compressed_bits(word) == bits

    def test_smallest_class_wins(self):
        # 0 also matches repeated-byte and sign-extended classes; the
        # zero class (smallest) must win.
        assert compress_word(0).pattern.name == "zero"
        # 0xFFFFFFFF matches repeated-byte AND sign-extended-4; 4 < 8.
        assert compress_word(0xFFFF_FFFF).pattern.name == "sign-extended-4"

    def test_range_checked(self):
        with pytest.raises(MemoryFaultError):
            compress_word(1 << 32)


class TestLosslessness:
    @pytest.mark.parametrize(
        "word",
        [0, 1, 7, 0xFFFF_FFF9, 0x7F, 0xFFFF_FF80, 0x7FFF, 0xFFFF_8000,
         0x1234_0000, 0x0042_FFB0, 0xABAB_ABAB, 0x1234_5678, 0xFFFF_FFFF],
    )
    def test_roundtrip_examples(self, word):
        assert decompress_word(compress_word(word)) == word

    @given(st.integers(0, 2**32 - 1))
    def test_roundtrip_property(self, word):
        assert decompress_word(compress_word(word)) == word

    @given(st.integers(0, 2**32 - 1))
    def test_size_bounds(self, word):
        bits = compressed_bits(word)
        assert 3 <= bits <= 35
        # Compression never loses: at worst 3 bits of prefix overhead.


class TestStrongerCodeUpgrade:
    def test_budget_constant_matches_footprint(self):
        # (39, 26): 13 check bits of a shortened DECTED code + 26
        # payload bits = the SECDED footprint.
        assert DECTED_PAYLOAD_BITS == 26

    def test_small_values_qualify(self):
        assert fits_stronger_code(0)
        assert fits_stronger_code(42)
        assert fits_stronger_code(0xFFFF_FFFF)
        assert fits_stronger_code(0x1234_0000)

    def test_dense_values_do_not(self):
        assert not fits_stronger_code(0x1234_5678)
        assert not fits_stronger_code(0x8FBF_0018)  # a typical lw

    def test_upgrade_is_real(self):
        """The claimed (39, 26) DECTED code actually exists: build it
        and verify distance 6 within the 39-bit footprint."""
        from repro.ecc.bch import BCHCode

        code = BCHCode(m=6, t=2, k=26, extended=True)
        assert code.n == 39
        assert code.k == 26
        assert code.verify_minimum_distance(6)
