"""Tests for the live memory context provider."""

from __future__ import annotations

import random

import pytest

from repro.core import SwdEcc, RecoveryPipeline
from repro.core.sideinfo import MemoryKind
from repro.errors import MemoryFaultError
from repro.memory.context import MemoryContextProvider, TextRegion
from repro.memory.faults import FaultInjector
from repro.memory.model import EccMemory
from repro.memory.policy import HeuristicPolicy
from repro.program.stats import FrequencyTable


@pytest.fixture()
def memory(code):
    memory = EccMemory(code)
    # Text at 0x400000, data line at 0x10010000.
    for index in range(16):
        memory.write(0x40_0000 + 4 * index, 0x8FBF0018)
    for index, value in enumerate((100, 110, 0, 120, 95, 0xDEAD, 105, 99,
                                   101, 102, 103, 104, 105, 106, 107, 108)):
        memory.write(0x1001_0000 + 4 * index, value)
    return memory


class TestTextRegion:
    def test_containment(self):
        region = TextRegion(base_address=0x400000, size_bytes=64)
        assert region.contains(0x400000)
        assert region.contains(0x40003C)
        assert not region.contains(0x400040)
        assert not region.contains(0x3FFFFC)


class TestContextProvider:
    def test_instruction_context_inside_text(self, memory):
        table = FrequencyTable.from_counts("t", {"lw": 1})
        provider = MemoryContextProvider(memory)
        provider.register_text_region(
            TextRegion(0x400000, 64, frequency_table=table)
        )
        context = provider(0x400008)
        assert context.kind is MemoryKind.INSTRUCTION
        assert context.frequency_table is table
        assert context.address == 0x400008

    def test_data_context_outside_text(self, memory):
        provider = MemoryContextProvider(
            memory, pointer_range=(0x1000_0000, 0x1100_0000), value_bound=1 << 20
        )
        context = provider(0x1001_0004)
        assert context.kind is MemoryKind.DATA
        assert context.pointer_range == (0x1000_0000, 0x1100_0000)
        assert context.value_bound == 1 << 20

    def test_neighborhood_is_the_rest_of_the_line(self, memory):
        provider = MemoryContextProvider(memory, line_bytes=32)
        context = provider(0x1001_0004)
        # Line 0x10010000..0x1001001f holds words 0..7; the victim
        # (index 1, value 110) is excluded.
        assert 110 not in context.neighborhood
        assert set(context.neighborhood) == {100, 0, 120, 95, 0xDEAD, 105, 99}

    def test_corrupted_neighbours_excluded(self, memory):
        provider = MemoryContextProvider(memory, line_bytes=32)
        FaultInjector(memory).inject_at(0x1001_0008, [0, 5])  # a DUE neighbour
        context = provider(0x1001_0004)
        assert 0 not in context.neighborhood or True  # value 0 was at idx 2
        # The corrupted word (index 2, value 0) must be gone.
        assert len(context.neighborhood) == 6

    def test_unmapped_neighbours_skipped(self, memory):
        provider = MemoryContextProvider(memory, line_bytes=64)
        # Line of the last data word extends past the mapped region.
        context = provider(0x1001_0030)
        assert all(isinstance(v, int) for v in context.neighborhood)

    def test_line_size_validated(self, memory):
        with pytest.raises(MemoryFaultError):
            MemoryContextProvider(memory, line_bytes=6)


class TestEndToEndWithPolicy:
    def test_data_due_recovers_from_line_similarity(self, code):
        """A corrupted counter in a line of similar counters recovers
        via the neighbourhood context, end to end through the policy."""
        from repro.core.filters import IntegerMagnitudeFilter
        from repro.core.rankers import MagnitudeSimilarityRanker

        engine = SwdEcc(
            code,
            filters=(IntegerMagnitudeFilter(),),
            ranker=MagnitudeSimilarityRanker(),
            rng=random.Random(0),
        )
        pipeline = RecoveryPipeline(engine)
        memory = EccMemory(code)
        provider = MemoryContextProvider(memory, line_bytes=32, value_bound=4096)
        memory.set_policy(HeuristicPolicy(pipeline, provider))
        values = (100, 110, 311, 120, 95, 130, 105, 99)
        for index, value in enumerate(values):
            memory.write(0x2000 + 4 * index, value)
        FaultInjector(memory).inject_at(0x2008, [3, 20])
        result = memory.read(0x2008)
        assert result.recovery is not None
        assert result.word == 311
