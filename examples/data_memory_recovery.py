#!/usr/bin/env python3
"""Data-memory recovery with Sec. III-B side information.

The paper's exemplar targets instruction memory, but Sec. III-B sketches
how the same enumerate/filter/rank pipeline recovers DUEs in *data*:

- a cache line of small unsigned counters -> bound the magnitude,
  prefer candidates close to the neighbours;
- a cache line of heap pointers -> restrict to the allocation's address
  range, prefer bitwise-similar candidates.

This example corrupts one word of each cache line with every possible
double-bit error and reports how often each heuristic finds the truth.

Run:  python examples/data_memory_recovery.py
"""

from __future__ import annotations

import random

from repro.analysis import render_table
from repro.core import (
    BitwiseSimilarityRanker,
    IntegerMagnitudeFilter,
    MagnitudeSimilarityRanker,
    PointerRangeFilter,
    RecoveryContext,
    SwdEcc,
    UniformRanker,
)
from repro.core.swdecc import success_probability
from repro.ecc import canonical_secded_39_32, double_bit_patterns


def sweep(engine, code, victim, context):
    total = 0.0
    patterns = double_bit_patterns(code.n)
    codeword = code.encode(victim)
    for pattern in patterns:
        result = engine.recover(pattern.apply(codeword), context)
        total += success_probability(result, victim)
    return total / len(patterns)


def main() -> None:
    code = canonical_secded_39_32()
    rng = random.Random(7)

    # Cache line 1: loop counters / small sizes.
    counters = (3, 17, 128, 42, 1999, 64, 7)
    victim_counter = 311
    counter_context = RecoveryContext.for_data(
        neighborhood=counters, value_bound=4096
    )

    # Cache line 2: pointers into a 64 KiB arena at 0x10010000.
    arena = (0x1001_0000, 0x1002_0000)
    pointers = tuple((rng.randrange(*arena) & ~3) for _ in range(7))
    victim_pointer = (rng.randrange(*arena) & ~3)
    pointer_context = RecoveryContext.for_data(
        neighborhood=pointers, pointer_range=arena
    )

    blind = SwdEcc(code, filters=(), ranker=UniformRanker(),
                   rng=random.Random(0))
    int_engine = SwdEcc(
        code,
        filters=(IntegerMagnitudeFilter(),),
        ranker=MagnitudeSimilarityRanker(),
        rng=random.Random(0),
    )
    ptr_engine = SwdEcc(
        code,
        filters=(PointerRangeFilter(),),
        ranker=BitwiseSimilarityRanker(),
        rng=random.Random(0),
    )

    print(f"counter cache line: {counters}, victim = {victim_counter}")
    print(f"pointer arena: [0x{arena[0]:x}, 0x{arena[1]:x}), "
          f"victim = 0x{victim_pointer:x}\n")

    rows = [
        ["counter, random candidate",
         f"{sweep(blind, code, victim_counter, counter_context):.4f}"],
        ["counter, magnitude filter + similarity ranker",
         f"{sweep(int_engine, code, victim_counter, counter_context):.4f}"],
        ["pointer, random candidate",
         f"{sweep(blind, code, victim_pointer, pointer_context):.4f}"],
        ["pointer, range filter + bitwise ranker",
         f"{sweep(ptr_engine, code, victim_pointer, pointer_context):.4f}"],
    ]
    print(render_table(
        ["strategy", "mean recovery rate over all 741 patterns"],
        rows,
        title="data-memory heuristic recovery (Sec. III-B ideas)",
    ))


if __name__ == "__main__":
    main()
