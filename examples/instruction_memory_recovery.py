#!/usr/bin/env python3
"""The paper's exemplar at small scale: instruction-memory DUE sweeps.

Generates a synthetic SPEC-like benchmark, then exhaustively applies a
sample of the 741 double-bit error patterns to its leading
instructions, recovering each DUE with the three strategies of Sec. IV
(random candidate, filtering-only, filtering-and-ranking).  Prints a
miniature Fig. 8: recovery rate by strategy and by bit region.

Run:  python examples/instruction_memory_recovery.py [benchmark]
"""

from __future__ import annotations

import sys

from repro.analysis import (
    BitRegion,
    DueSweep,
    RecoveryStrategy,
    region_means,
    render_series,
    render_table,
)
from repro.ecc import canonical_secded_39_32
from repro.program import synthesize_benchmark


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    code = canonical_secded_39_32()
    image = synthesize_benchmark(benchmark, length=2048)
    print(f"benchmark: {image.name}  ({len(image)} instructions)")
    print("first instructions of .text:")
    for line in image.disassembly().splitlines()[:8]:
        print(f"  {line}")
    print()

    window = 20
    rows = []
    fig8_series = None
    for strategy in RecoveryStrategy:
        sweep = DueSweep(code, strategy, num_instructions=window)
        result = sweep.run(image)
        rows.append([strategy.value, f"{result.mean_success_rate:.4f}"])
        if strategy is RecoveryStrategy.FILTER_AND_RANK:
            fig8_series = result.success_series()
            regions = region_means(result.outcomes)
    print(render_table(
        ["strategy", "mean recovery rate"],
        rows,
        title=f"recovery over {window} instructions x 741 patterns "
        "(paper Fig. 8 mean: 0.3403)",
    ))
    print()
    print(render_table(
        ["bit region", "mean recovery rate"],
        [
            [region.value, f"{rate:.4f}"]
            for region, rate in sorted(regions.items(), key=lambda kv: -kv[1])
        ],
        title="filter-and-rank by error location "
        "(paper: ~0.99 best in decode fields, ~0.15 low-order)",
    ))
    print()
    assert fig8_series is not None
    print(render_series(
        fig8_series,
        title="recovery rate vs error-pattern index (cf. paper Fig. 8)",
    ))
    decode_best = max(
        outcome.success_rate
        for outcome in result.outcomes
        if region_means([outcome]).get(BitRegion.DECODE_FIELDS) is not None
    )
    print(f"\nbest decode-field pattern recovery rate: {decode_best:.2f}")


if __name__ == "__main__":
    main()
