#!/usr/bin/env python3
"""Cross-ISA SWD-ECC: recovering RISC-V instructions.

The engine is ISA-agnostic — swap the legality/mnemonic oracle and the
same enumerate→filter→rank pipeline recovers RV32I DUEs.  Because the
RISC-V encoding is far sparser than MIPS (~5 % of random words decode
vs ~58 %), legality filtering prunes much harder and recovery improves.

Run:  python examples/riscv_recovery.py
"""

from __future__ import annotations

import random
from collections import Counter

from repro.analysis import render_table
from repro.core import RecoveryContext, SwdEcc
from repro.core.filters import OracleLegalityFilter
from repro.core.rankers import OracleFrequencyRanker
from repro.ecc import canonical_secded_39_32, double_bit_patterns
from repro.core.swdecc import success_probability
from repro.isa_rv import generate_rv32i_words, is_legal, try_mnemonic
from repro.program.stats import FrequencyTable


def main() -> None:
    code = canonical_secded_39_32()
    words = generate_rv32i_words(2048)
    table = FrequencyTable.from_counts(
        "rv32i", dict(Counter(try_mnemonic(word) for word in words))
    )
    context = RecoveryContext.for_instructions(table)
    engine = SwdEcc(
        code,
        filters=(OracleLegalityFilter(is_legal, "rv32i-legality"),),
        ranker=OracleFrequencyRanker(try_mnemonic, "rv32i-frequency"),
        rng=random.Random(2016),
    )

    # One worked DUE: corrupt `sw ra, 12(sp)` in its *opcode* field.
    # Note the inversion vs MIPS: RISC-V keeps the opcode in the low
    # bits (instruction bits 6..0 = codeword positions 25..31), so the
    # highly-recoverable region sits at the opposite end of the word.
    original = 0x00112623
    received = code.encode(original) ^ (1 << (38 - 26)) ^ (1 << (38 - 30))
    result = engine.recover(received, context)
    print(f"original: 0x{original:08x} ({try_mnemonic(original)})")
    print(f"candidates {result.num_candidates} -> legal {result.num_valid}:")
    for message in result.valid_messages:
        marker = "  <== chosen" if message == result.chosen_message else ""
        print(f"  0x{message:08x}  {try_mnemonic(message)}{marker}")
    print(f"recovered correctly: {result.recovered(original)}\n")

    # A small sweep for the headline comparison.
    patterns = double_bit_patterns(code.n)
    total = 0.0
    cases = 0
    for index in range(15):
        message = words[index]
        codeword = code.encode(message)
        for pattern in patterns:
            trace = engine.recover(pattern.apply(codeword), context)
            total += success_probability(trace, message)
            cases += 1
    print(render_table(
        ["quantity", "value"],
        [
            ["RV32I mean recovery (15 instr x 741 patterns)",
             f"{total / cases:.4f}"],
            ["MIPS-I reference (same experiment)", "~0.30"],
            ["random-candidate baseline", "~0.085"],
        ],
        title="sparse encodings make SWD-ECC stronger",
    ))


if __name__ == "__main__":
    main()
