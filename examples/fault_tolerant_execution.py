#!/usr/bin/env python3
"""End-to-end system demo: Fig. 1 and Fig. 3 on a running program.

Compiles a small program (MiniLang -> MIPS machine code), loads it into
ECC-protected memory, injects a double-bit error into its instruction
stream, and lets the Fig. 3 recovery ladder handle the DUE when the CPU
fetches it:

1. conventional system (crash policy) -> UncorrectableError;
2. SWD-ECC heuristic recovery -> the program keeps running;
3. forked execution over the candidate list -> symptom-based
   arbitration picks the right candidate (Sec. III-C).

Run:  python examples/fault_tolerant_execution.py
"""

from __future__ import annotations

import random

from repro.core import RecoveryContext, RecoveryPipeline, SwdEcc
from repro.ecc import canonical_secded_39_32
from repro.errors import UncorrectableError
from repro.isa import try_decode
from repro.memory import EccMemory, CrashPolicy, FaultInjector, HeuristicPolicy
from repro.program import FrequencyTable, ProgramImage, compile_source
from repro.sim import Cpu, EccBackedMemory, ForkedExecution

BASE = 0x0040_0000

SOURCE = """
fn triangle(n) {
    let total = 0;
    let i = 1;
    while (i <= n) { total = total + i; i = i + 1; }
    return total;
}
fn main() {
    print(triangle(100));
    return triangle(100);
}
"""


def fresh_memory(code, policy, words):
    memory = EccMemory(code, policy)
    memory.load_image(words, BASE)
    return memory


def run_cpu(memory, num_words):
    cpu = Cpu(
        EccBackedMemory(memory),
        entry_pc=BASE,
        text_range=(BASE, BASE + 4 * num_words),
    )
    return cpu.run(max_steps=200_000)


def main() -> None:
    code = canonical_secded_39_32()
    program = compile_source(SOURCE, base_address=BASE)
    words = list(program.words)
    print(f"compiled program: {len(words)} instructions")

    # Golden run: no faults.
    golden = run_cpu(fresh_memory(code, CrashPolicy(), words), len(words))
    print(f"golden run: printed {golden.output}, exit {golden.exit_code}\n")

    # Pick a victim instruction inside the triangle loop.
    victim = next(
        index for index, word in enumerate(words)
        if (d := try_decode(word)) is not None
        and d.mnemonic == "addu" and d.rt != 0
    )
    victim_address = BASE + 4 * victim
    error_bits = (2, 28)  # opcode bit + funct bit: a decode-field DUE
    print(f"victim: word {victim} (0x{victim_address:x}) = "
          f"{try_decode(words[victim])!s}; flipping codeword bits {error_bits}\n")

    # --- 1. Conventional system: guaranteed crash. ---------------------
    memory = fresh_memory(code, CrashPolicy(), words)
    FaultInjector(memory).inject_at(victim_address, list(error_bits))
    try:
        run_cpu(memory, len(words))
        print("conventional system: (unexpectedly survived?)")
    except UncorrectableError as error:
        print(f"conventional system: CRASH — {error}")

    # --- 2. SWD-ECC heuristic recovery. ---------------------------------
    table = FrequencyTable.from_image(
        ProgramImage.from_words("program", words, BASE)
    )
    context = RecoveryContext.for_instructions(table)
    pipeline = RecoveryPipeline(SwdEcc(code, rng=random.Random(1)))
    memory = fresh_memory(
        code, HeuristicPolicy(pipeline, lambda address: context), words
    )
    FaultInjector(memory).inject_at(victim_address, list(error_bits))
    result = run_cpu(memory, len(words))
    recovered_ok = result.output == golden.output and result.exit_code == golden.exit_code
    print(
        f"SWD-ECC system: recovered heuristically "
        f"({memory.stats.heuristic_recoveries} DUE), program printed "
        f"{result.output}, exit {result.exit_code} "
        f"-> {'CORRECT' if recovered_ok else 'forward progress, output differs'}"
    )

    # --- 3. Forked execution over the candidates. -----------------------
    engine = SwdEcc(code, rng=random.Random(1))
    received = code.encode(words[victim])
    for bit in error_bits:
        received ^= 1 << (code.n - 1 - bit)
    candidates = engine.recover(received, context).valid_messages
    fork = ForkedExecution(words, BASE, victim, max_steps=200_000)
    verdict = fork.run(list(candidates))
    print(f"\nforked execution over {len(candidates)} valid candidates:")
    for outcome in verdict.outcomes:
        status = (
            f"exit {outcome.result.exit_code}"
            if outcome.survived
            else f"symptom {outcome.result.symptom.value}"
        )
        print(f"  0x{outcome.candidate:08x}  {str(try_decode(outcome.candidate) or '<illegal>'):28s} {status}")
    print(f"arbitration rule: {verdict.rule.value}; chosen = "
          f"{None if verdict.chosen is None else hex(verdict.chosen)}; "
          f"truth = 0x{words[victim]:08x}")


if __name__ == "__main__":
    main()
