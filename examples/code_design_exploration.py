#!/usr/bin/env python3
"""Exploring the code-design space with the coding-theory substrate.

SWD-ECC's effectiveness depends on properties of the underlying code:
how many equidistant candidates a DUE has, how triple errors behave,
what the storage overhead buys.  This example uses the library as a
code-design tool, comparing four memory codes on the metrics that
matter to heuristic recovery:

- candidate-list statistics for the errors the code cannot correct
  (Fig. 4 generalised to every code);
- the exact random-recovery baseline (analytic, no sweeps);
- weight-3 behaviour of the SECDED codes (miscorrect vs detect);
- redundancy cost.

Run:  python examples/code_design_exploration.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.analysis.theory import (
    expected_random_candidate_success,
    predicted_count_distribution,
    triple_error_outcomes,
)
from repro.ecc import (
    canonical_secded_39_32,
    dected_code,
    extended_hamming_secded,
    hsiao_72_64,
)
from repro.ecc.candidates import CandidateEnumerator
import random


def dected_candidate_stats(code, samples: int = 60, seed: int = 1):
    """Empirical 3-bit-DUE candidate statistics for a DECTED code."""
    enumerator = CandidateEnumerator(code)
    rng = random.Random(seed)
    sizes = []
    while len(sizes) < samples:
        codeword = code.encode(rng.getrandbits(32))
        received = codeword
        for position in rng.sample(range(code.n), 3):
            received ^= 1 << (code.n - 1 - position)
        if code.decode(received).status.name != "DUE":
            continue
        sizes.append(len(enumerator.candidates_within_radius(received, 3)))
    return min(sizes), sum(sizes) / len(sizes), max(sizes)


def main() -> None:
    codes = {
        "canonical Hsiao (39,32)": canonical_secded_39_32(),
        "ext. Hamming (39,32)": extended_hamming_secded(32),
        "Hsiao (72,64)": hsiao_72_64(),
    }

    rows = []
    for name, code in codes.items():
        distribution = predicted_count_distribution(code)
        counts = sorted(distribution)
        mean = sum(c * n for c, n in distribution.items()) / sum(
            distribution.values()
        )
        rows.append([
            name,
            f"{code.r}/{code.k}",
            f"{counts[0]}..{counts[-1]}",
            f"{mean:.1f}",
            f"{expected_random_candidate_success(code):.4f}",
        ])
    print(render_table(
        ["code", "parity/data bits", "DUE candidates", "mean",
         "random-recovery baseline"],
        rows,
        title="2-bit DUE candidate structure across SECDED designs "
        "(all computed analytically from H)",
    ))
    print()

    rows = []
    for name, code in codes.items():
        outcomes = triple_error_outcomes(code)
        total = sum(outcomes.values())
        rows.append([
            name,
            f"{outcomes['miscorrected'] / total:.1%}",
            f"{outcomes['detected'] / total:.1%}",
        ])
    print(render_table(
        ["code", "3-bit errors silently miscorrected", "3-bit errors detected"],
        rows,
        title="what happens beyond the SECDED guarantee",
    ))
    print()

    dected = dected_code()
    low, mean, high = dected_candidate_stats(dected)
    print(render_table(
        ["quantity", "value"],
        [
            ["code", f"({dected.n},{dected.k}) DECTED, d = 6"],
            ["3-bit DUE candidates (min/mean/max)", f"{low}/{mean:.1f}/{high}"],
            ["vs SECDED's 2-bit DUE candidates", "8/12.0/15"],
        ],
        title="SWD-ECC one weight up: stronger codes shrink the guess list",
    ))


if __name__ == "__main__":
    main()
