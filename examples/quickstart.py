#!/usr/bin/env python3
"""Quickstart: recover a 2-bit DUE in one MIPS instruction.

Walks the whole SWD-ECC pipeline on a single word:

1. encode an instruction with the (39, 32) SECDED code;
2. flip two bits (a detected-but-uncorrectable error);
3. enumerate the equidistant candidate codewords;
4. filter out candidates that are not legal MIPS instructions;
5. rank the survivors by mnemonic frequency and pick the winner.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.core import RecoveryContext, SwdEcc
from repro.ecc import canonical_secded_39_32
from repro.isa import encode, render_instruction, try_decode
from repro.program import FrequencyTable


def main() -> None:
    code = canonical_secded_39_32()
    print(f"code: {code.name}  (n={code.n}, k={code.k}, d=4)")

    # The instruction we will corrupt: lw $ra, 24($sp).
    original = encode("lw", rt=31, rs=29, imm=24)
    print(f"original:  0x{original:08x}  {render_instruction(try_decode(original))}")

    codeword = code.encode(original)
    print(f"codeword:  0x{codeword:010x}  ({code.n} bits incl. 7 parity)")

    # A double-bit error in the opcode field: positions 1 and 4.
    received = codeword ^ (1 << (code.n - 1 - 1)) ^ (1 << (code.n - 1 - 4))
    decode_result = code.decode(received)
    print(f"received:  0x{received:010x}  -> hardware says {decode_result.status.name}")

    # Side information: a typical program's mnemonic frequencies.
    table = FrequencyTable.from_counts(
        "typical-program",
        {"lw": 200, "addiu": 105, "sw": 75, "addu": 55, "beq": 42,
         "bne": 40, "lui": 36, "jal": 30, "jr": 22, "swl": 1, "lwc2": 1},
    )
    context = RecoveryContext.for_instructions(table)

    engine = SwdEcc(code, rng=random.Random(2016))
    result = engine.recover(received, context)

    print(f"\ncandidate codewords ({result.num_candidates}):")
    for message in result.candidate_messages:
        instruction = try_decode(message)
        rendered = (
            render_instruction(instruction) if instruction else "<illegal>"
        )
        marker = "  <- survived filter" if message in result.valid_messages else ""
        print(f"  0x{message:08x}  {rendered:32s}{marker}")

    print(f"\nvalid after legality filter: {result.num_valid}")
    print(f"chosen: 0x{result.chosen_message:08x}  "
          f"{render_instruction(try_decode(result.chosen_message))}")
    print(f"correct recovery: {result.recovered(original)}")
    probability = engine.recovery_probability(received, original, context)
    print(f"exact success probability of this strategy here: {probability:.2f}")


if __name__ == "__main__":
    main()
