#!/usr/bin/env python3
"""CI smoke test: the adaptive code selector reacts to adjacent bursts.

Starts a :class:`repro.service.RecoveryService` on an ephemeral port
with an :class:`repro.service.AdaptiveCodeSelector` attached, drives
the loadgen with an *adjacent-burst* DUE profile (every word is a
valid (39, 32) codeword with two adjacent bits flipped), and asserts,
exiting nonzero on any violation:

- the load completes with zero HTTP errors and every word recovered;
- the selector, polled by the service after each served request,
  upgrades the observed region from ``secded-39-32`` to ``daec-41-32``
  (the observed adjacent-DUE fraction is 1.0, far above the 0.65
  upgrade threshold);
- ``/metrics`` parses with the strict round-trip parser
  (:func:`repro.obs.promtext.parse_exposition`) and carries every
  ``selector_*`` family with counts consistent with the load: one
  classified sample per word, all adjacent, exactly one upgrade and
  no downgrade.

Run from the repository root:
``PYTHONPATH=src python scripts/selector_smoke.py``.
"""

from __future__ import annotations

import random
import sys
import urllib.request

from repro.ecc import canonical_secded_39_32
from repro.obs import events as obs_events
from repro.obs import promtext
from repro.obs.metrics import MetricsRegistry
from repro.service import AdaptiveCodeSelector, RecoveryService
from repro.service.catalog import _CONTEXT_IMAGE_LENGTH, _CONTEXT_SEED
from repro.service.loadgen import run_load
from repro.program.synth import synthesize_benchmark

CONTEXT = "mcf"
WORDS_PER_REQUEST = 32
#: One closed-loop client, one request: the upgrade decision lands on
#: that request's poll, and no later traffic can muddy the assertion.
CLIENTS = 1
REQUESTS = 1


def adjacent_burst_due_words(count: int = 32, seed: int = 7) -> list[int]:
    """Valid (39, 32) codewords, each with one adjacent double flipped.

    The loadgen's stock :func:`generate_due_words` samples *uniformly
    random* doubles; this profile is the adjacent-MBU one the selector
    is built to detect.
    """
    rng = random.Random(seed)
    code = canonical_secded_39_32()
    image = synthesize_benchmark(
        CONTEXT, length=_CONTEXT_IMAGE_LENGTH, seed=_CONTEXT_SEED
    )
    words = []
    for _ in range(count):
        message = image.words[rng.randrange(len(image))]
        start = rng.randrange(code.n - 1)
        burst = 0b11 << (code.n - 2 - start)
        words.append(code.encode(message) ^ burst)
    return words


def main() -> int:
    failures: list[str] = []
    words = adjacent_burst_due_words(WORDS_PER_REQUEST)
    registry = MetricsRegistry()
    # Engines bind the process-wide event log when the catalog builds
    # them, so the selector must watch that same log (a private one
    # would never see the served DUEs).
    event_log = obs_events.get_event_log()
    event_log.clear()
    selector = AdaptiveCodeSelector(event_log=event_log, registry=registry)
    service = RecoveryService(
        port=0, registry=registry, event_log=event_log, selector=selector
    )
    with service:
        service.catalog.preload([CONTEXT])
        result = run_load(
            "127.0.0.1", service.port,
            clients=CLIENTS, requests_per_client=REQUESTS,
            words_per_request=WORDS_PER_REQUEST,
            context=CONTEXT, words=words,
        )
        with urllib.request.urlopen(
            service.url + "/metrics", timeout=15
        ) as response:
            families = promtext.parse_exposition(
                response.read().decode("utf-8")
            )

    expected_words = CLIENTS * REQUESTS * WORDS_PER_REQUEST
    if result.http_errors:
        failures.append(f"load saw {result.http_errors} HTTP errors")
    if result.recovered != expected_words:
        failures.append(
            f"only {result.recovered}/{expected_words} words recovered"
        )

    # The switch itself: every DUE was adjacent-consistent, so the
    # region the events landed in (no addresses -> region 0) must now
    # run the DAEC code.
    assignments = selector.assignments()
    if selector.code_for(0) != selector.upgrade_code_id:
        failures.append(
            f"region 0 still runs {selector.code_for(0)!r}; expected "
            f"an upgrade to {selector.upgrade_code_id!r}"
        )
    if assignments != {0: selector.upgrade_code_id}:
        failures.append(f"unexpected assignments {assignments!r}")

    # Strict-parsed selector_* families, consistent with the load.
    for family in ("selector_polls", "selector_samples",
                   "selector_adjacent_samples",
                   "selector_width_mismatches", "selector_evicted_events",
                   "selector_switches", "selector_upgrades",
                   "selector_downgrades", "selector_regions_observed",
                   "selector_regions_upgraded",
                   "selector_adjacent_fraction", "selector_config_info"):
        if family not in families:
            failures.append(f"/metrics is missing {family}")

    def total(family: str) -> float | None:
        metric = families.get(family)
        return metric.sample_value("_total") if metric else None

    def gauge(family: str) -> float | None:
        metric = families.get(family)
        return metric.sample_value("") if metric else None

    if total("selector_samples") != expected_words:
        failures.append(
            f"selector_samples_total {total('selector_samples')} != "
            f"{expected_words} words served"
        )
    if total("selector_adjacent_samples") != expected_words:
        failures.append(
            f"selector_adjacent_samples_total "
            f"{total('selector_adjacent_samples')} != {expected_words} "
            f"(every injected DUE was an adjacent burst)"
        )
    if total("selector_upgrades") != 1:
        failures.append(
            f"selector_upgrades_total {total('selector_upgrades')} != 1"
        )
    if total("selector_downgrades") != 0:
        failures.append(
            f"selector_downgrades_total {total('selector_downgrades')} "
            f"!= 0 (the upgrade must not flap back)"
        )
    if total("selector_switches") != 1:
        failures.append(
            f"selector_switches_total {total('selector_switches')} != 1"
        )
    if total("selector_width_mismatches") != 0:
        failures.append(
            f"selector_width_mismatches_total "
            f"{total('selector_width_mismatches')} != 0"
        )
    if gauge("selector_regions_upgraded") != 1:
        failures.append(
            f"selector_regions_upgraded {gauge('selector_regions_upgraded')} "
            f"!= 1"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"selector smoke: OK ({expected_words} adjacent-burst DUEs, "
            f"region 0 secded-39-32 -> {selector.upgrade_code_id}, "
            f"{len(families)} metric families strict-parsed)"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
