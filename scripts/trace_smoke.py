#!/usr/bin/env python3
"""CI smoke test: end-to-end request tracing on the sharded service.

Starts a 2-shard :class:`repro.service.RecoveryService` with tracing
enabled and asserts, exiting nonzero on any violation:

- requests with and without an inbound W3C ``traceparent`` header are
  answered with a well-formed outbound ``traceparent``; an inbound
  header donates its trace id (with a fresh local span id), and an
  unsampled inbound header (flags ``00``) propagates ids without
  retaining a trace;
- ``/metrics`` strict-parses (:func:`repro.obs.promtext.parse_exposition`)
  and carries all five ``service_stage_*`` latency histogram families
  with counts covering every request served;
- ``GET /traces`` returns JSON span trees in which every span's
  parent resolves within its tree, stage names are well-formed, every
  sampled request's trace id is retained, the five stage spans sit
  under a ``service.request`` root in chronological order summing to
  no more than the end-to-end duration, and the worker-side
  ``service.shard.execute`` span is nested inside ``shard_exec``;
- ``GET /spans?format=json`` parses and reports tracing enabled.

Run from the repository root:
``PYTHONPATH=src python scripts/trace_smoke.py``.
"""

from __future__ import annotations

import json
import sys
import urllib.request

from repro.obs import promtext
from repro.obs import trace as obs_trace
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.service import RecoveryService
from repro.service.loadgen import generate_due_words

CONTEXT = "mcf"
STAGE_FAMILIES = (
    "service_stage_queue_wait",
    "service_stage_linger",
    "service_stage_shard_exec",
    "service_stage_serialize",
    "service_stage_respond",
)
STAGE_SPAN_NAMES = (
    "service.stage.queue_wait",
    "service.stage.linger",
    "service.stage.shard_exec",
    "service.stage.serialize",
    "service.stage.respond",
)


def post(url: str, payload: dict, traceparent: str | None = None):
    headers = {"Content-Type": "application/json"}
    if traceparent is not None:
        headers["traceparent"] = traceparent
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), headers=headers
    )
    with urllib.request.urlopen(request, timeout=15) as response:
        return json.load(response), response.headers.get("traceparent")


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=15) as response:
        return json.load(response)


def walk(node: dict):
    yield node
    for child in node.get("children", ()):
        yield from walk(child)


def check_tree(tree: dict, failures: list[str]) -> None:
    """One /traces entry: parents resolve, names well-formed, stages
    ordered and additive, worker span nested in shard_exec."""
    trace_id = tree["trace_id"]
    root = tree["root"]
    if root["name"] != "service.request":
        failures.append(
            f"trace {trace_id}: root is {root['name']!r}, "
            f"not service.request"
        )
        return
    ids = {node["span_id"] for node in walk(root)}
    if len(ids) != tree["span_count"]:
        failures.append(
            f"trace {trace_id}: {tree['span_count']} spans claimed, "
            f"{len(ids)} distinct ids in the tree"
        )
    for node in walk(root):
        if len(node["span_id"]) != 16:
            failures.append(
                f"trace {trace_id}: span id {node['span_id']!r} is not "
                f"16 hex chars"
            )
        if node is not root and node["parent_id"] not in ids:
            failures.append(
                f"trace {trace_id}: span {node['name']} has unresolved "
                f"parent {node['parent_id']!r}"
            )
        if node["name"].startswith("service.stage.") and \
                node["name"] not in STAGE_SPAN_NAMES:
            failures.append(
                f"trace {trace_id}: malformed stage name {node['name']!r}"
            )
    stages = {c["name"]: c for c in root["children"]
              if c["name"] in STAGE_SPAN_NAMES}
    missing = set(STAGE_SPAN_NAMES) - set(stages)
    if missing:
        failures.append(
            f"trace {trace_id}: missing stage spans {sorted(missing)}"
        )
        return
    ordered = [stages[name] for name in STAGE_SPAN_NAMES]
    for earlier, later in zip(ordered, ordered[1:]):
        if earlier["end_ns"] > later["start_ns"]:
            failures.append(
                f"trace {trace_id}: {earlier['name']} overlaps "
                f"{later['name']}"
            )
    stage_sum = sum(stage["duration_ns"] for stage in ordered)
    if stage_sum > tree["duration_ns"]:
        failures.append(
            f"trace {trace_id}: stage sum {stage_sum} ns exceeds "
            f"end-to-end {tree['duration_ns']} ns"
        )
    shard_exec = stages["service.stage.shard_exec"]
    workers = [c for c in shard_exec["children"]
               if c["name"] == "service.shard.execute"]
    if not workers:
        failures.append(
            f"trace {trace_id}: no worker span under shard_exec"
        )
    for worker in workers:
        if not (shard_exec["start_ns"] <= worker["start_ns"]
                and worker["end_ns"] <= shard_exec["end_ns"]):
            failures.append(
                f"trace {trace_id}: worker span escapes the "
                f"shard_exec window"
            )


def main() -> int:
    failures: list[str] = []
    words = generate_due_words(count=64, seed=3)
    collector = obs_trace.enable_tracing(obs_trace.SpanCollector())
    service = RecoveryService(
        port=0, workers=2, max_batch=8, linger_s=0.001,
        registry=MetricsRegistry(), event_log=EventLog(),
    )
    service.catalog.preload([CONTEXT])
    try:
        with service:
            batch_url = service.url + "/recover/batch"

            # Inbound traceparent: the id is donated, the span id is ours.
            inbound_ids = []
            for index in range(4):
                trace_id = f"{0xACE0 + index:032x}"
                _, echoed = post(
                    batch_url,
                    {"received": words[index * 8:(index + 1) * 8],
                     "context": CONTEXT},
                    traceparent=f"00-{trace_id}-{'cd' * 8}-01",
                )
                context = obs_trace.parse_traceparent(echoed)
                if context is None or context.trace_id != trace_id:
                    failures.append(
                        f"inbound trace id was not donated: {echoed!r}"
                    )
                elif obs_trace.format_span_id(context.span_id) == "cd" * 8:
                    failures.append(
                        "outbound span id repeated the caller's"
                    )
                inbound_ids.append(trace_id)

            # No header: the service mints a fresh trace.
            minted_ids = []
            for index in range(4):
                _, echoed = post(
                    batch_url,
                    {"received": words[index * 8:(index + 1) * 8],
                     "context": CONTEXT},
                )
                context = obs_trace.parse_traceparent(echoed)
                if context is None or not context.sampled:
                    failures.append(
                        f"minted traceparent malformed or unsampled: "
                        f"{echoed!r}"
                    )
                else:
                    minted_ids.append(context.trace_id)

            # Unsampled inbound: ids propagate, nothing is retained.
            unsampled_id = f"{0xDEAD:032x}"
            _, echoed = post(
                batch_url,
                {"received": words[:4], "context": CONTEXT},
                traceparent=f"00-{unsampled_id}-{'cd' * 8}-00",
            )
            context = obs_trace.parse_traceparent(echoed)
            if context is None or context.sampled or \
                    context.trace_id != unsampled_id:
                failures.append(
                    f"unsampled traceparent mishandled: {echoed!r}"
                )

            # /metrics: all five stage families, strict-parsed, counting
            # every request (the unsampled one included).
            with urllib.request.urlopen(
                service.url + "/metrics", timeout=15
            ) as response:
                families = promtext.parse_exposition(
                    response.read().decode("utf-8")
                )
            served = 9  # 4 inbound + 4 minted + 1 unsampled
            for family in STAGE_FAMILIES:
                if family not in families:
                    failures.append(f"/metrics is missing {family}")
                    continue
                count = families[family].sample_value("_count")
                if count < served:
                    failures.append(
                        f"{family}_count {count} < {served} requests served"
                    )

            # /traces: every sampled request retained, trees well-formed.
            payload = get_json(service.url + "/traces")
            if not payload.get("tracing"):
                failures.append("/traces reports tracing disabled")
            retained = {t["trace_id"]: t for t in payload.get("traces", [])}
            for trace_id in inbound_ids + minted_ids:
                if trace_id not in retained:
                    failures.append(
                        f"trace {trace_id} missing from /traces"
                    )
            if unsampled_id in retained:
                failures.append("unsampled request was retained")
            for trace_id in inbound_ids:
                entry = retained.get(trace_id)
                if entry and entry["remote_parent_id"] != "cd" * 8:
                    failures.append(
                        f"trace {trace_id}: remote parent "
                        f"{entry['remote_parent_id']!r} != caller span id"
                    )
            for tree in retained.values():
                check_tree(tree, failures)

            limited = get_json(service.url + "/traces?limit=2")
            if limited["count"] > 2:
                failures.append("/traces?limit=2 returned more than 2")
            durations = [t["duration_ns"] for t in limited["traces"]]
            if durations != sorted(durations, reverse=True):
                failures.append("/traces is not sorted slowest-first")

            # /spans?format=json shares the tree exporter.
            spans_json = get_json(service.url + "/spans?format=json")
            if not spans_json.get("tracing") or \
                    not spans_json.get("spans"):
                failures.append(
                    "/spans?format=json returned no span forest"
                )
    finally:
        obs_trace.disable_tracing()

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(
            f"trace smoke: OK ({len(collector.traces)} traces retained, "
            f"{len(collector)} spans, all five stage histograms present)"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
