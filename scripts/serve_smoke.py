#!/usr/bin/env python3
"""CI smoke test: scrape ``/metrics`` live while a parallel sweep runs.

Starts an :class:`repro.obs.server.ObsServer` on an ephemeral port,
runs a small ``jobs=2`` DUE sweep in the main thread while a scraper
thread polls ``/metrics`` and ``/healthz``, then asserts:

- every scraped exposition parses with the strict round-trip parser
  (:func:`repro.obs.promtext.parse_exposition`);
- ``/healthz`` answered ``{"status": "ok"}`` on every poll;
- the ``sweep_progress_patterns_done`` gauge advanced monotonically
  and reached the announced total;
- the sweep outcomes are bit-identical to a serial run with no server.

Exits nonzero (with a message) on any violation, so CI fails loudly.
Run from the repository root: ``PYTHONPATH=src python scripts/serve_smoke.py``.
"""

from __future__ import annotations

import sys
import threading
import time
import urllib.request

from repro.analysis.sweep import DueSweep, RecoveryStrategy
from repro.ecc import canonical_secded_39_32
from repro.obs import promtext
from repro.obs.progress import SweepProgress
from repro.obs.server import ObsServer
from repro.program import synthesize_benchmark

JOBS = 2
WINDOW = 4
IMAGE_LENGTH = 512
SCRAPE_INTERVAL_S = 0.05


class Scraper(threading.Thread):
    """Poll the server until stopped, recording progress samples."""

    def __init__(self, base_url: str) -> None:
        super().__init__(name="serve-smoke-scraper", daemon=True)
        self.base_url = base_url
        self.samples: list[float] = []
        self.healthz_ok = 0
        self.errors: list[str] = []
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=10)

    def scrape_once(self) -> None:
        with urllib.request.urlopen(
            self.base_url + "/metrics", timeout=5
        ) as response:
            families = promtext.parse_exposition(
                response.read().decode("utf-8")
            )
        family = families.get("sweep_progress_patterns_done")
        if family is not None:
            self.samples.append(family.sample_value())
        with urllib.request.urlopen(
            self.base_url + "/healthz", timeout=5
        ) as response:
            if b'"ok"' in response.read():
                self.healthz_ok += 1

    def run(self) -> None:
        while not self._halt.is_set():
            try:
                self.scrape_once()
            except Exception as error:  # any scrape failure fails CI
                self.errors.append(f"{type(error).__name__}: {error}")
                return
            self._halt.wait(SCRAPE_INTERVAL_S)


def main() -> int:
    code = canonical_secded_39_32()
    image = synthesize_benchmark("mcf", length=IMAGE_LENGTH)
    sweep = DueSweep(
        code, RecoveryStrategy.FILTER_AND_RANK, num_instructions=WINDOW
    )

    serial = sweep.run(image, jobs=1)

    # Creating the tracker starts a fresh sweep session: it resets the
    # progress gauges the serial reference run above advanced, so every
    # scrape below observes only the served run (0 -> total).
    progress = SweepProgress()
    with ObsServer(port=0) as server:
        scraper = Scraper(server.url)
        scraper.start()
        started = time.perf_counter()
        served = sweep.run(image, jobs=JOBS, progress=progress)
        wall = time.perf_counter() - started
        scraper.scrape_once()  # guarantee one final post-run sample
        scraper.stop()

    failures = []
    if scraper.errors:
        failures.append(f"scrape failed: {scraper.errors[0]}")
    if not scraper.samples:
        failures.append("no progress samples were scraped")
    if scraper.samples != sorted(scraper.samples):
        failures.append(
            f"patterns_done went backwards: {scraper.samples}"
        )
    if scraper.samples and scraper.samples[-1] != progress.total:
        failures.append(
            f"final patterns_done {scraper.samples[-1]} != "
            f"announced total {progress.total} (stale-gauge reset broken?)"
        )
    if not scraper.healthz_ok:
        failures.append("healthz never answered ok")
    if served != serial:
        failures.append("served parallel sweep != serial no-server sweep")

    print(
        f"serve smoke: {len(scraper.samples)} scrapes over {wall:.2f}s, "
        f"patterns_done {scraper.samples[:1]} -> {scraper.samples[-1:]}, "
        f"healthz ok x{scraper.healthz_ok}"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("serve smoke: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
