#!/usr/bin/env python3
"""CI smoke test: energy accounting end to end, small but real.

Runs a tiny Pareto sweep (2 codes x 2 strategies), then asserts:

- every combination actually measured work: positive op deltas,
  recoveries, and modeled joules;
- the 2-D (recovery rate, joules/recovery) frontier is monotone:
  sorted by energy ascending, recovery rates strictly increase —
  a dominated point sneaking onto the frontier breaks this loudly;
- the derived energy/cost gauges are live on ``/metrics`` and the
  exposition parses with the strict round-trip parser
  (:func:`repro.obs.promtext.parse_exposition`), including the
  ``energy_joules_per_recovery`` and
  ``cost_dollars_per_million_requests`` families;
- ``energy_joules_per_recovery`` agrees with total-joules /
  total-recoveries from the raw counters;
- the record appends cleanly to a ``BENCH_energy.json``-style file.

Exits nonzero (with a message) on any violation, so CI fails loudly.
Run from the repository root: ``PYTHONPATH=src python scripts/pareto_smoke.py``.
"""

from __future__ import annotations

import json
import sys
import tempfile
import urllib.request
from pathlib import Path

from repro.analysis.pareto import (
    PARETO_CODES,
    append_energy_record,
    pareto_front,
    sweep_pareto,
)
from repro.analysis.sweep import RecoveryStrategy
from repro.obs import energy as obs_energy
from repro.obs import metrics as obs_metrics
from repro.obs import promtext
from repro.obs.server import ObsServer
from repro.program import synthesize_benchmark

CODES = {
    name: PARETO_CODES[name] for name in ("secded-39-32", "hsiao-39-32")
}
STRATEGIES = (
    RecoveryStrategy.RANDOM_CANDIDATE,
    RecoveryStrategy.FILTER_AND_RANK,
)
WINDOW = 3
IMAGE_LENGTH = 256


def main() -> int:
    failures: list[str] = []
    image = synthesize_benchmark("mcf", length=IMAGE_LENGTH)
    points = sweep_pareto(
        codes=CODES, strategies=STRATEGIES, image=image,
        num_instructions=WINDOW,
    )

    if len(points) != len(CODES) * len(STRATEGIES):
        failures.append(
            f"expected {len(CODES) * len(STRATEGIES)} points, "
            f"got {len(points)}"
        )
    for point in points:
        if point.recoveries <= 0:
            failures.append(f"{point.code}/{point.strategy}: no recoveries")
        if point.joules <= 0 or point.joules_per_recovery <= 0:
            failures.append(
                f"{point.code}/{point.strategy}: no modeled energy "
                f"(joules={point.joules})"
            )
        if not any(delta > 0 for delta in point.ops.values()):
            failures.append(
                f"{point.code}/{point.strategy}: all op deltas zero"
            )

    # 2-D frontier monotonicity: by construction of non-dominance,
    # strictly cheaper frontier points must recover strictly less, and
    # coincident-energy points must tie on rate (else one dominates).
    frontier = pareto_front(points, include_latency=False)
    if not frontier:
        failures.append("empty Pareto frontier")
    rates = [point.recovery_rate for point in frontier]
    joules = [point.joules_per_recovery for point in frontier]
    if joules != sorted(joules):
        failures.append(f"frontier not sorted by energy: {joules}")
    for (ja, ra), (jb, rb) in zip(
        zip(joules, rates), zip(joules[1:], rates[1:])
    ):
        if (ja < jb and ra >= rb) or (ja == jb and ra != rb):
            failures.append(
                "frontier not monotone: "
                f"({ja}, {ra}) then ({jb}, {rb})"
            )

    # Derived gauges live on /metrics, strict-parser valid.
    with ObsServer(port=0) as server:
        with urllib.request.urlopen(
            server.url + "/metrics", timeout=5
        ) as response:
            families = promtext.parse_exposition(
                response.read().decode("utf-8")
            )
    for family in (
        "energy_joules_total",
        "energy_joules_per_recovery",
        "cost_dollars_per_million_requests",
        "carbon_grams_co2_total",
    ):
        if family not in families:
            failures.append(f"/metrics is missing the {family} family")
    if "energy_joules_per_recovery" in families:
        served = families["energy_joules_per_recovery"].sample_value()
        registry = obs_metrics.get_registry()
        model = obs_energy.get_energy_model()
        expected = model.joules(obs_energy.op_counts(registry, model)) / (
            registry.counter("swdecc.recoveries").value
        )
        if abs(served - expected) > 1e-12 + 1e-6 * expected:
            failures.append(
                f"energy_joules_per_recovery {served} != "
                f"recomputed {expected}"
            )

    # Trajectory record round-trips.
    with tempfile.TemporaryDirectory() as tmp:
        bench_path = Path(tmp) / "BENCH_energy.json"
        depth = append_energy_record(
            bench_path, points, "1970-01-01T00:00:00+00:00"
        )
        history = json.loads(bench_path.read_text())
        if depth != 1 or len(history) != 1:
            failures.append(f"bench record depth {depth}/{len(history)}")
        recorded = history[0]["points"]
        if len(recorded) != len(points):
            failures.append("bench record dropped points")
        if not any(entry["on_frontier"] for entry in recorded):
            failures.append("bench record marked no frontier points")

    print(
        f"pareto smoke: {len(points)} points, "
        f"frontier {[(p.code, p.strategy) for p in frontier]}, "
        f"rates {rates[:1]} -> {rates[-1:]}"
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("pareto smoke: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
