#!/usr/bin/env python3
"""CI smoke test: drive the DUE-recovery service end-to-end.

Starts a :class:`repro.service.RecoveryService` on an ephemeral port
and asserts, exiting nonzero on any violation:

- a brief closed-loop load completes with zero HTTP errors and every
  word recovered;
- every served answer is bit-identical to a fresh serial engine
  calling :meth:`SwdEcc.recover` on the same words;
- ``/metrics`` parses with the strict round-trip parser
  (:func:`repro.obs.promtext.parse_exposition`) and carries the
  ``service_*`` families with counts consistent with the load;
- the overload path verifiably degrades: with a gated executor and a
  one-word queue, an extra request answers ``detect-only`` with
  ``reason: overload`` (and the parked work still completes);
- the multi-process path survives a worker kill: with ``workers=2``,
  SIGKILLing a shard's process mid-serving loses and duplicates
  nothing (the parent's strict-parsed ``service_recoveries_total``
  equals exactly the words sent), the shard respawns, and the
  per-shard gauges are present on ``/metrics``.

Run from the repository root:
``PYTHONPATH=src python scripts/service_smoke.py``.
"""

from __future__ import annotations

import json
import random
import sys
import threading
import urllib.request

from repro.core.sideinfo import RecoveryContext
from repro.core.swdecc import SwdEcc, TieBreak
from repro.ecc import canonical_secded_39_32
from repro.errors import ReproError
from repro.obs import promtext
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.program.stats import FrequencyTable
from repro.program.synth import synthesize_benchmark
from repro.service import RecoveryService
from repro.service.api import error_payload, result_payload
from repro.service.catalog import _CONTEXT_IMAGE_LENGTH, _CONTEXT_SEED
from repro.service.loadgen import generate_due_words, run_load

CONTEXT = "mcf"
WORDS_PER_REQUEST = 32
CLIENTS = 2
REQUESTS = 10


def post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=15) as response:
        return json.load(response)


def check_load_and_metrics(failures: list[str]) -> None:
    """Closed-loop load + strict /metrics validation + bit-identity."""
    words = generate_due_words()
    registry = MetricsRegistry()
    service = RecoveryService(
        port=0, registry=registry, event_log=EventLog()
    )
    with service:
        service.catalog.preload([CONTEXT])
        result = run_load(
            "127.0.0.1", service.port,
            clients=CLIENTS, requests_per_client=REQUESTS,
            words_per_request=WORDS_PER_REQUEST,
            context=CONTEXT, words=words,
        )
        served = post(
            service.url + "/recover/batch",
            {"received": words[:16], "context": CONTEXT},
        )
        with urllib.request.urlopen(
            service.url + "/metrics", timeout=15
        ) as response:
            families = promtext.parse_exposition(
                response.read().decode("utf-8")
            )

    expected_words = CLIENTS * REQUESTS * WORDS_PER_REQUEST
    if result.http_errors:
        failures.append(f"load saw {result.http_errors} HTTP errors")
    if result.words != expected_words:
        failures.append(
            f"load completed {result.words} words, expected "
            f"{expected_words}"
        )
    if result.recovered != expected_words:
        failures.append(
            f"only {result.recovered}/{expected_words} words recovered"
        )

    for family in ("service_requests", "service_recoveries",
                   "service_batches", "service_batch_words",
                   "service_request_seconds", "service_queue_depth"):
        if family not in families:
            failures.append(f"/metrics is missing {family}")
    recovered_metric = families.get("service_recoveries")
    if recovered_metric is not None:
        total = recovered_metric.sample_value("_total")
        if total < expected_words:
            failures.append(
                f"service_recoveries_total {total} < load's "
                f"{expected_words}"
            )

    # Bit-identity: a fresh serial engine must produce the exact same
    # payloads the service returned.
    code = canonical_secded_39_32()
    engine = SwdEcc(
        code, tie_break=TieBreak.FIRST, rng=random.Random(0), cache=True
    )
    image = synthesize_benchmark(
        CONTEXT, length=_CONTEXT_IMAGE_LENGTH, seed=_CONTEXT_SEED
    )
    context = RecoveryContext.for_instructions(
        FrequencyTable.from_image(image)
    )
    for word, payload in zip(words[:16], served["results"]):
        try:
            expected = result_payload(word, engine.recover(word, context))
        except ReproError as error:
            expected = error_payload(word, error)
        if payload != expected:
            failures.append(
                f"served payload for 0x{word:x} differs from serial "
                f"recover()"
            )
            break

    print(
        f"service smoke: {result.words} words at "
        f"{result.throughput_words_per_s:.0f}/s, "
        f"p99 {result.latency_ms(0.99):.2f} ms, "
        f"{len(families)} metric families"
    )


def check_overload_degrades(failures: list[str]) -> None:
    """A saturated service must answer detect-only, not queue forever."""
    gate = threading.Event()
    service = RecoveryService(
        port=0,
        registry=MetricsRegistry(),
        event_log=EventLog(),
        max_batch=1,
        linger_s=0.0,
        queue_limit=1,
        overload_policy="degrade",
    )
    real_execute = service._engine.execute

    def gated_execute(requests):
        gate.wait(15.0)
        return real_execute(requests)

    service._batcher._execute = gated_execute
    code = canonical_secded_39_32()
    due = code.encode(0xBEEF) ^ 0b101

    from repro.service.api import RecoveryRequest

    with service:
        import time

        parked = service.batcher.submit(RecoveryRequest(words=(due,)))
        deadline = time.monotonic() + 5.0
        while service.batcher.queued_words() and time.monotonic() < deadline:
            time.sleep(0.005)
        filler = service.batcher.submit(RecoveryRequest(words=(due,)))
        shed = post(service.url + "/recover", {"received": due})
        gate.set()
        parked_payload = parked.result(timeout=15.0)
        filler_payload = filler.result(timeout=15.0)

    if not shed.get("degraded"):
        failures.append(f"overloaded request was not degraded: {shed}")
    elif shed.get("reason") != "overload":
        failures.append(f"degradation reason was {shed.get('reason')!r}")
    elif shed["result"]["status"] != "detect-only":
        failures.append(
            f"degraded status was {shed['result']['status']!r}, "
            f"expected detect-only"
        )
    if shed.get("retry_after_s", 0) <= 0:
        failures.append("degraded answer carried no retry_after_s hint")
    for name, payload in (("parked", parked_payload),
                          ("filler", filler_payload)):
        status = json.loads(payload["fragments"][0])["status"]
        if status != "recovered":
            failures.append(f"{name} job was dropped under overload")

    print("service smoke: overload degraded to detect-only with "
          f"retry_after_s={shed.get('retry_after_s')}")


def check_worker_kill_respawn(failures: list[str]) -> None:
    """SIGKILL a shard worker mid-serving; nothing lost or doubled."""
    import os
    import signal

    words = generate_due_words()
    registry = MetricsRegistry()
    service = RecoveryService(
        port=0, workers=2, registry=registry, event_log=EventLog()
    )
    service.catalog.preload([CONTEXT])
    sent = 0
    with service:
        first = run_load(
            "127.0.0.1", service.port,
            clients=CLIENTS, requests_per_client=REQUESTS,
            words_per_request=WORDS_PER_REQUEST,
            context=CONTEXT, words=words,
        )
        sent += first.words
        pool = service.shard_pool
        victim_index = pool.route("secded-39-32", CONTEXT)
        victim_pid = pool.worker_pids()[victim_index]
        os.kill(victim_pid, signal.SIGKILL)
        second = run_load(
            "127.0.0.1", service.port,
            clients=CLIENTS, requests_per_client=REQUESTS,
            words_per_request=WORDS_PER_REQUEST,
            context=CONTEXT, words=words,
        )
        sent += second.words
        respawned_pid = pool.worker_pids()[victim_index]
        states = pool.states()
        with urllib.request.urlopen(
            service.url + "/metrics", timeout=15
        ) as response:
            families = promtext.parse_exposition(
                response.read().decode("utf-8")
            )

    for name, result in (("pre-kill", first), ("post-kill", second)):
        if result.http_errors:
            failures.append(
                f"{name} load saw {result.http_errors} HTTP errors"
            )
        if result.recovered != result.words:
            failures.append(
                f"{name} load recovered {result.recovered}/"
                f"{result.words} words"
            )
    if respawned_pid in (None, victim_pid):
        failures.append(
            f"shard {victim_index} was not respawned "
            f"(pid {victim_pid} -> {respawned_pid})"
        )
    if states.get(victim_index) != "ok":
        failures.append(
            f"shard {victim_index} state is {states.get(victim_index)!r} "
            f"after respawn"
        )

    # Exactly-once accounting across the kill: the parent's merged
    # counter equals the words sent — none lost, none double-counted.
    recoveries = families.get("service_recoveries")
    total = recoveries.sample_value("_total") if recoveries else None
    if total != sent:
        failures.append(
            f"service_recoveries_total {total} != {sent} words sent "
            f"across the worker kill"
        )
    respawns = families.get("service_shard_respawns")
    if respawns is None or respawns.sample_value("_total") < 1:
        failures.append("/metrics did not record the shard respawn")
    for family in ("service_shard_0_up", "service_shard_1_up",
                   "service_shard_0_queue_depth",
                   "service_shard_1_queue_depth",
                   "service_shard_0_batch_words"):
        if family not in families:
            failures.append(f"/metrics is missing per-shard {family}")

    # Decode-table precompilation: each serving worker builds its
    # table at fork (ShardSpec.precompile defaults on), and the build
    # counters/histogram ship to the parent with the worker's first
    # delta — so the parent's strict-parsed /metrics must carry the
    # full decode_table_* group with internally consistent values.
    for family in ("decode_table_builds", "decode_table_entries",
                   "decode_table_pair_masks",
                   "decode_table_resident_bytes",
                   "decode_table_build_seconds"):
        if family not in families:
            failures.append(f"/metrics is missing {family}")
    builds_metric = families.get("decode_table_builds")
    builds = (
        builds_metric.sample_value("_total") if builds_metric else 0
    )
    if builds < 2:
        # At least the pre-kill victim and its respawn served traffic,
        # and each shipped its own table build.
        failures.append(
            f"decode_table_builds_total {builds} < 2 across the "
            f"worker kill (victim + respawn must each build)"
        )
    if "decode_table_entries" in families and builds:
        entries = families["decode_table_entries"].sample_value("_total")
        if entries != 63 * builds:
            failures.append(
                f"decode_table_entries_total {entries} != 63 per build "
                f"x {builds} builds for the (39,32) SECDED code"
            )
    if "decode_table_pair_masks" in families and builds:
        pair_masks = families["decode_table_pair_masks"].sample_value(
            "_total"
        )
        if pair_masks != 741 * builds:
            failures.append(
                f"decode_table_pair_masks_total {pair_masks} != 741 "
                f"per build x {builds} builds (C(39,2) column pairs)"
            )
    if "decode_table_build_seconds" in families:
        build_seconds = families["decode_table_build_seconds"]
        if build_seconds.sample_value("_count") != builds:
            failures.append(
                "decode_table_build_seconds_count disagrees with "
                "decode_table_builds_total"
            )
    if "decode_table_resident_bytes" in families and builds:
        resident = families["decode_table_resident_bytes"].sample_value(
            "_total"
        )
        if not 0 < resident / builds < 16 * 1024 * 1024:
            failures.append(
                f"decode_table_resident_bytes_total/build {resident}/"
                f"{builds} is outside the plausible (39,32) range"
            )

    print(
        f"service smoke: worker kill survived "
        f"(pid {victim_pid} -> {respawned_pid}, "
        f"{sent} words exactly-once, "
        f"{len(families)} metric families strict-parsed)"
    )


def main() -> int:
    failures: list[str] = []
    check_load_and_metrics(failures)
    check_overload_degrades(failures)
    check_worker_kill_respawn(failures)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("service smoke: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
