#!/usr/bin/env python3
"""Load generator for the DUE-recovery service (closed or open loop).

Either drives an already-running service::

    PYTHONPATH=src python scripts/service_loadgen.py \
        --host 127.0.0.1 --port 9200 --clients 4 --requests 100

or self-hosts one for the duration (the default when ``--port`` is
omitted), so a one-liner produces a full throughput/latency report::

    PYTHONPATH=src python scripts/service_loadgen.py --clients 4
    PYTHONPATH=src python scripts/service_loadgen.py --workers 2 \
        --mode open --rate 500

Closed loop (default): each client thread issues ``POST
/recover/batch`` back-to-back over a kept-alive connection, so the
offered load adapts to the service.  Open loop (``--mode open --rate
R``): requests fire on a fixed global schedule of R requests/s and
latency is accounted from each request's *scheduled* arrival time, so
queueing delay shows up in the tail instead of silently throttling
the generator.

The run reports words/s and p50/p90/p99 request latency, and appends
the record — including the serving process's ``workers`` count and
the load ``mode`` — to ``BENCH_service.json`` at the repo root
(disable with ``--no-history``) so regressions stay visible in
history.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request
from datetime import datetime, timezone
from pathlib import Path

from repro.service import RecoveryService
from repro.service.loadgen import generate_due_words, run_load

HISTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _probe_workers(host: str, port: int) -> int | None:
    """The target service's shard count, from its ``/healthz``."""
    try:
        with urllib.request.urlopen(
            f"http://{host}:{port}/healthz", timeout=5.0
        ) as response:
            return json.loads(response.read()).get("workers")
    except Exception:
        return None


def _append_history(record: dict) -> None:
    history = []
    if HISTORY_PATH.exists():
        try:
            history = json.loads(HISTORY_PATH.read_text())
        except json.JSONDecodeError:
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    HISTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="closed-loop load generator for the recovery service"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="target an already-running service "
                        "(default: self-host one for the run)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent closed-loop client threads")
    parser.add_argument("--requests", type=int, default=50,
                        help="requests per client")
    parser.add_argument("--batch", type=int, default=64, metavar="WORDS",
                        help="words per request")
    parser.add_argument("--context", default="mcf",
                        help="side-info context id sent with each request")
    parser.add_argument("--max-batch", type=int, default=512,
                        help="service micro-batch size (self-host only)")
    parser.add_argument("--linger-ms", type=float, default=1.0,
                        help="service batch linger (self-host only)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="shard processes for the self-hosted "
                        "service (0 = in-process)")
    parser.add_argument("--mode", choices=["closed", "open"],
                        default="closed",
                        help="closed loop (response-paced) or open loop "
                        "(fixed offered rate)")
    parser.add_argument("--rate", type=float, default=None, metavar="RPS",
                        help="offered requests/s (open-loop mode only)")
    parser.add_argument("--no-history", action="store_true",
                        help=f"do not append to {HISTORY_PATH.name}")
    args = parser.parse_args(argv)
    if args.mode == "open" and (args.rate is None or args.rate <= 0):
        parser.error("--mode open requires a positive --rate")

    words = generate_due_words()
    service = None
    host, port = args.host, args.port
    try:
        if port is None:
            service = RecoveryService(
                port=0,
                max_batch=args.max_batch,
                linger_s=args.linger_ms / 1000.0,
                workers=args.workers,
            )
            # Preload before start so sharded workers fork warm.
            service.catalog.preload([args.context]
                                    if args.context != "none" else [])
            service.start()
            host, port = "127.0.0.1", service.port
            print(f"self-hosting recovery service on {service.url} "
                  f"(workers={args.workers})", file=sys.stderr)
        workers = (
            args.workers if service is not None
            else _probe_workers(host, port)
        )
        result = run_load(
            host, port,
            clients=args.clients,
            requests_per_client=args.requests,
            words_per_request=args.batch,
            context=args.context,
            words=words,
            mode=args.mode,
            rate_rps=args.rate,
        )
    finally:
        if service is not None:
            service.stop()

    record = {
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "tool": "service_loadgen",
        "self_hosted": service is not None,
        "workers": workers,
        "context": args.context,
        "words_per_request": args.batch,
        **result.to_record(),
    }
    if not args.no_history:
        _append_history(record)

    summary = result.to_record()
    print(json.dumps(record, indent=2))
    print(
        f"\nloadgen: {summary['words']} words over "
        f"{summary['wall_seconds']}s = "
        f"{summary['throughput_words_per_s']:.0f} recoveries/s, "
        f"p50 {summary['latency_ms']['p50']:.2f} ms, "
        f"p99 {summary['latency_ms']['p99']:.2f} ms",
        file=sys.stderr,
    )
    if summary["slowest_traces"]:
        print("loadgen: slowest requests (look them up with "
              "'repro trace <id>' if the service traces):",
              file=sys.stderr)
        for entry in summary["slowest_traces"]:
            print(f"  {entry['trace_id']}  {entry['latency_ms']:.3f} ms",
                  file=sys.stderr)
    if result.http_errors or result.requests == 0:
        print(f"loadgen: {result.http_errors} HTTP errors", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
